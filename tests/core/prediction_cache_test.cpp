// Prediction cache semantics: hit/miss/fill accounting, model-swap
// invalidation, and the bit-identity contract -- every search flavor must
// return exactly the same SearchResult with the cache on as off.
#include "core/prediction_cache.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/config_search.h"
#include "core/predictor.h"
#include "fake_models.h"
#include "util/thread_pool.h"

namespace sturgeon::core {
namespace {

const MachineSpec m = MachineSpec::xeon_e5_2630_v4();

std::unique_ptr<Predictor> cached_predictor(double demand = 1.0,
                                            int min_ways = 3) {
  auto p = std::make_unique<Predictor>(m, testing::fake_models(demand,
                                                               min_ways));
  p->enable_cache();
  return p;
}

std::size_t expected_table_size() {
  return static_cast<std::size_t>(m.num_cores + 1) *
         static_cast<std::size_t>(m.num_freq_levels()) *
         static_cast<std::size_t>(m.llc_ways + 1);
}

void expect_same_result(const SearchResult& a, const SearchResult& b,
                        const char* what) {
  EXPECT_EQ(a.feasible, b.feasible) << what;
  EXPECT_EQ(a.best, b.best) << what;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.predicted_throughput),
            std::bit_cast<std::uint64_t>(b.predicted_throughput))
      << what;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.predicted_power_w),
            std::bit_cast<std::uint64_t>(b.predicted_power_w))
      << what;
  ASSERT_EQ(a.candidates.size(), b.candidates.size()) << what;
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].partition, b.candidates[i].partition) << what;
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(a.candidates[i].predicted_throughput),
        std::bit_cast<std::uint64_t>(b.candidates[i].predicted_throughput))
        << what;
  }
}

TEST(PredictionCache, SliceIndexRoundTrips) {
  PredictionCache cache(m, {});
  EXPECT_EQ(cache.table_size(), expected_table_size());
  for (std::size_t i = 0; i < cache.table_size(); ++i) {
    const AppSlice s = cache.slice_at(i);
    EXPECT_EQ(cache.slice_index(s), i);
  }
}

TEST(PredictionCache, MissFillsWholeTableThenHits) {
  auto p = cached_predictor();
  const AppSlice a{4, 6, 8};
  const AppSlice b{10, 3, 12};

  EXPECT_TRUE(p->cache_enabled());
  p->ls_qos_ok(9000.0, a);
  auto s = p->cache_stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.fills, 1u);
  EXPECT_EQ(s.hits, 0u);
  // The fill swept the whole table through the ls_qos model.
  EXPECT_EQ(p->model_call_breakdown().ls_qos, expected_table_size());

  p->ls_qos_ok(9000.0, b);
  s = p->cache_stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  // Hits are array lookups: no new model invocations.
  EXPECT_EQ(p->model_call_breakdown().ls_qos, expected_table_size());
}

TEST(PredictionCache, SameBucketDifferentQpsRefills) {
  auto p = cached_predictor();
  const AppSlice a{4, 6, 8};
  p->ls_qos_ok(9000.0, a);
  // 9001 lands in the same 50-QPS bucket but is a different exact load:
  // bit-identity requires a refill, not a stale-table hit.
  p->ls_qos_ok(9001.0, a);
  const auto s = p->cache_stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.fills, 2u);
  EXPECT_EQ(s.hits, 0u);
}

TEST(PredictionCache, BeTablesAreLoadIndependent) {
  auto p = cached_predictor();
  const AppSlice be{8, 5, 10};
  p->be_ipc(be);
  p->be_ipc(AppSlice{3, 2, 4});
  auto s = p->cache_stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  // cores == 0 short-circuits before the cache.
  EXPECT_EQ(p->be_ipc(AppSlice{0, 5, 10}), 0.0);
  EXPECT_EQ(p->be_power_w(AppSlice{0, 5, 10}), 0.0);
  s = p->cache_stats();
  EXPECT_EQ(s.hits + s.misses, 2u);
}

TEST(PredictionCache, CachedValuesBitIdenticalToUncached) {
  Predictor uncached(m, testing::fake_models());
  auto cached = cached_predictor();
  for (double qps : {4000.0, 9000.0, 15000.0}) {
    for (int cores = 1; cores <= m.num_cores; cores += 3) {
      for (int f = 0; f <= m.max_freq_level(); f += 2) {
        for (int w = 1; w <= m.llc_ways; w += 4) {
          const AppSlice s{cores, f, w};
          EXPECT_EQ(cached->ls_qos_ok(qps, s), uncached.ls_qos_ok(qps, s));
          EXPECT_EQ(std::bit_cast<std::uint64_t>(cached->ls_power_w(qps, s)),
                    std::bit_cast<std::uint64_t>(uncached.ls_power_w(qps, s)));
          EXPECT_EQ(std::bit_cast<std::uint64_t>(cached->be_ipc(s)),
                    std::bit_cast<std::uint64_t>(uncached.be_ipc(s)));
          EXPECT_EQ(std::bit_cast<std::uint64_t>(cached->be_power_w(s)),
                    std::bit_cast<std::uint64_t>(uncached.be_power_w(s)));
        }
      }
    }
  }
}

TEST(PredictionCache, SwapModelsInvalidates) {
  auto p = cached_predictor(/*demand=*/1.0);
  const AppSlice probe{2, m.max_freq_level(), m.llc_ways};
  // Demand 1.0: 2 cores * 2.2 GHz serves 4 kQPS.
  EXPECT_TRUE(p->ls_qos_ok(4000.0, probe));
  const auto before = p->cache_stats();
  EXPECT_EQ(before.generation, 0u);

  // Much higher demand: the same slice now fails. A stale table would
  // still answer true.
  p->swap_models(testing::fake_models(/*demand_per_kqps=*/5.0));
  EXPECT_FALSE(p->ls_qos_ok(4000.0, probe));
  const auto after = p->cache_stats();
  EXPECT_EQ(after.generation, 1u);
  EXPECT_EQ(after.fills, before.fills + 1);
}

TEST(PredictionCache, DisableCacheRestoresScalarPath) {
  auto p = cached_predictor();
  p->ls_qos_ok(9000.0, AppSlice{4, 6, 8});
  p->disable_cache();
  EXPECT_FALSE(p->cache_enabled());
  const auto calls = p->model_invocations();
  p->ls_qos_ok(9000.0, AppSlice{4, 6, 8});
  EXPECT_EQ(p->model_invocations(), calls + 1);
  EXPECT_EQ(p->cache_stats().hits + p->cache_stats().misses, 0u);
}

TEST(PredictionCache, AllSearchFlavorsBitIdenticalCachedVsUncached) {
  Predictor uncached(m, testing::fake_models());
  auto cached = cached_predictor();
  const double budget = 140.0;
  ConfigSearch su(uncached, budget);
  ConfigSearch sc(*cached, budget);
  ThreadPool pool(4);
  for (double qps : {5000.0, 12000.0, 20000.0}) {
    expect_same_result(su.search(qps), sc.search(qps), "search");
    expect_same_result(su.search_parallel(qps, pool),
                       sc.search_parallel(qps, pool), "search_parallel");
    expect_same_result(su.exhaustive(qps), sc.exhaustive(qps), "exhaustive");
  }
}

TEST(PredictionCache, SteadyStateSearchUsesNoModelCalls) {
  auto cached = cached_predictor();
  ConfigSearch search(*cached, 140.0);
  const auto cold = search.search(12000.0);
  EXPECT_GT(cold.model_invocations, 0u);  // fills count their sweep
  const auto warm = search.search(12000.0);
  EXPECT_EQ(warm.model_invocations, 0u);
  expect_same_result(cold, warm, "steady state");
}

// TSan target: many workers race on the shard mutexes and published
// tables while the pool evaluates candidates concurrently.
TEST(PredictionCache, ConcurrentParallelSearchIsRaceFree) {
  auto cached = cached_predictor();
  ConfigSearch search(*cached, 140.0);
  ThreadPool pool(8);
  SearchResult first;
  for (int round = 0; round < 4; ++round) {
    // Alternate loads so rounds mix cold fills with warm hits.
    const double qps = round % 2 == 0 ? 12000.0 : 7000.0;
    const auto r = search.search_parallel(qps, pool);
    if (round == 0) {
      first = r;
    } else if (round % 2 == 0) {
      expect_same_result(first, r, "concurrent repeat");
    }
  }
  const auto s = cached->cache_stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.fills, 0u);
}

}  // namespace
}  // namespace sturgeon::core
