#include "core/balancer.h"

#include <gtest/gtest.h>

#include "fake_models.h"

namespace sturgeon::core {
namespace {

const MachineSpec m = MachineSpec::xeon_e5_2630_v4();

Partition mid_partition() {
  Partition p;
  p.ls = {6, 6, 6};
  p.be = {14, 8, 14};
  return p;
}

TEST(Balancer, NoActionInsideBand) {
  const auto pred = testing::fake_predictor(m);
  ResourceBalancer b(*pred, 200.0);
  b.arm(mid_partition());
  EXPECT_FALSE(b.step(0.15, 10000.0, mid_partition()).has_value());
  EXPECT_FALSE(b.active());
}

TEST(Balancer, HarvestsHalfOfBeHoldingsFirst) {
  const auto pred = testing::fake_predictor(m);
  ResourceBalancer b(*pred, 200.0);
  const auto p0 = mid_partition();
  b.arm(p0);
  const auto p1 = b.step(0.02, 10000.0, p0);
  ASSERT_TRUE(p1.has_value());
  EXPECT_TRUE(b.active());
  // Binary-harvest granularity: the chosen resource moved by half of the
  // BE side's holdings (7 cores, 7 ways or 4-5 P-states).
  const int moved_cores = p1->ls.cores - p0.ls.cores;
  const int moved_ways = p1->ls.llc_ways - p0.ls.llc_ways;
  const int moved_freq = p0.be.freq_level - p1->be.freq_level;
  EXPECT_EQ(moved_cores + moved_ways + moved_freq > 0, true);
  if (moved_cores > 0) {
    EXPECT_EQ(moved_cores, 7);
  }
  if (moved_ways > 0) {
    EXPECT_EQ(moved_ways, 7);
  }
  if (moved_freq > 0) {
    EXPECT_GE(moved_freq, 4);
  }
}

TEST(Balancer, PicksMinimumThroughputLossResource) {
  // The fake IPC rule gains from ways and loses mildly from cores, so
  // harvesting WAYS costs more throughput than the power (frequency)
  // swap; the balancer must pick the cheaper one.
  const auto pred = testing::fake_predictor(m);
  ResourceBalancer b(*pred, 500.0);
  const auto p0 = mid_partition();
  b.arm(p0);
  const auto p1 = b.step(0.02, 10000.0, p0);
  ASSERT_TRUE(p1.has_value());
  double best_thr = -1.0;
  std::string best;
  // Recompute the three candidate harvests by hand.
  {
    Partition c = p0;  // cores by 7
    c.ls.cores += 7;
    c.be.cores -= 7;
    if (pred->be_throughput(c.be) > best_thr) {
      best_thr = pred->be_throughput(c.be);
      best = "cores";
    }
    Partition w = p0;  // ways by 7
    w.ls.llc_ways += 7;
    w.be.llc_ways -= 7;
    if (pred->be_throughput(w.be) > best_thr) {
      best_thr = pred->be_throughput(w.be);
      best = "ways";
    }
    Partition f = p0;  // freq by 5 (half of 8+1 rounded)
    f.be.freq_level -= 5;
    f.ls.freq_level = std::min(m.max_freq_level(), f.ls.freq_level + 5);
    if (pred->be_throughput(f.be) > best_thr) {
      best_thr = pred->be_throughput(f.be);
      best = "power";
    }
  }
  EXPECT_EQ(b.last_action(), best);
}

TEST(Balancer, GranularityHalvesEachHarvest) {
  const auto pred = testing::fake_predictor(m);
  ResourceBalancer b(*pred, 500.0);
  auto p = mid_partition();
  b.arm(p);
  const auto p1 = b.step(0.02, 10000.0, p);
  ASSERT_TRUE(p1);
  const int first = (p1->ls.cores - p.ls.cores) +
                    (p1->ls.llc_ways - p.ls.llc_ways) +
                    (p.be.freq_level - p1->be.freq_level);
  // Report slack improved (so the same resource stays eligible) but
  // still below alpha: next harvest of the same type must be smaller.
  const auto p2 = b.step(0.06, 10000.0, *p1);
  ASSERT_TRUE(p2);
  const int second = (p2->ls.cores - p1->ls.cores) +
                     (p2->ls.llc_ways - p1->ls.llc_ways) +
                     (p1->be.freq_level - p2->be.freq_level);
  EXPECT_LT(second, first);
}

TEST(Balancer, RevertsHalfOnExcessiveHarvest) {
  const auto pred = testing::fake_predictor(m);
  ResourceBalancer b(*pred, 500.0);
  const auto p0 = mid_partition();
  b.arm(p0);
  const auto p1 = b.step(0.02, 10000.0, p0);
  ASSERT_TRUE(p1);
  // Next interval the latency is suddenly very low: revert half.
  const auto p2 = b.step(0.6, 10000.0, *p1);
  ASSERT_TRUE(p2);
  EXPECT_EQ(b.last_action(), "revert");
  // The revert moves back toward the BE side but not all the way.
  const int harvested = (p1->ls.cores - p0.ls.cores) +
                        (p1->ls.llc_ways - p0.ls.llc_ways);
  const int reverted = (p1->ls.cores - p2->ls.cores) +
                       (p1->ls.llc_ways - p2->ls.llc_ways) +
                       (p2->be.freq_level - p1->be.freq_level);
  if (harvested > 0) {
    EXPECT_GT(reverted, 0);
    EXPECT_LT(reverted, harvested);
  }
}

TEST(Balancer, SettlesInsideBand) {
  const auto pred = testing::fake_predictor(m);
  ResourceBalancer b(*pred, 500.0);
  const auto p0 = mid_partition();
  b.arm(p0);
  ASSERT_TRUE(b.step(0.02, 10000.0, p0));
  EXPECT_TRUE(b.active());
  EXPECT_FALSE(b.step(0.15, 10000.0, p0).has_value());
  EXPECT_FALSE(b.active());
}

TEST(Balancer, IneffectiveResourceExcluded) {
  const auto pred = testing::fake_predictor(m);
  ResourceBalancer b(*pred, 500.0);
  auto p = mid_partition();
  b.arm(p);
  const auto p1 = b.step(0.02, 10000.0, p);
  ASSERT_TRUE(p1);
  const std::string first = b.last_action();
  // Slack did not improve: the same resource must not be chosen again.
  const auto p2 = b.step(0.02, 10000.0, *p1);
  ASSERT_TRUE(p2);
  EXPECT_NE(b.last_action(), first);
}

TEST(Balancer, NothingToHarvestFromEmptyBe) {
  const auto pred = testing::fake_predictor(m);
  ResourceBalancer b(*pred, 500.0);
  Partition p = Partition::all_to_ls(m);
  b.arm(p);
  EXPECT_FALSE(b.step(0.02, 10000.0, p).has_value());
}

TEST(Balancer, RespectsPowerBudgetOnPowerSwap) {
  // A power harvest raises the LS frequency; with a budget exactly at the
  // current draw, the balancer must not pick a harvest that overloads.
  const auto pred = testing::fake_predictor(m);
  const auto p0 = mid_partition();
  const double now = pred->total_power_w(10000.0, p0);
  ResourceBalancer b(*pred, now + 1.0);
  b.arm(p0);
  const auto p1 = b.step(0.02, 10000.0, p0);
  if (p1) {
    EXPECT_LE(pred->total_power_w(10000.0, *p1), now + 1.0 + 1e-9);
  }
}

TEST(Balancer, ConfigurableInitialGranularity) {
  const auto pred = testing::fake_predictor(m);
  BalancerConfig cfg;
  cfg.initial_granularity = 0.25;
  ResourceBalancer b(*pred, 500.0, cfg);
  const auto p0 = mid_partition();  // BE owns 14 cores / 14 ways
  b.arm(p0);
  const auto p1 = b.step(0.02, 10000.0, p0);
  ASSERT_TRUE(p1);
  const int moved = (p1->ls.cores - p0.ls.cores) +
                    (p1->ls.llc_ways - p0.ls.llc_ways) +
                    (p0.be.freq_level - p1->be.freq_level);
  // Quarter-granularity: 3-4 units of cores/ways, or 2 of frequency.
  EXPECT_GE(moved, 2);
  EXPECT_LE(moved, 4);
}

TEST(Balancer, RejectsBadConfig) {
  const auto pred = testing::fake_predictor(m);
  EXPECT_THROW(ResourceBalancer(*pred, 0.0), std::invalid_argument);
  BalancerConfig bad;
  bad.beta = bad.alpha;
  EXPECT_THROW(ResourceBalancer(*pred, 100.0, bad), std::invalid_argument);
  BalancerConfig bad_g;
  bad_g.initial_granularity = 0.0;
  EXPECT_THROW(ResourceBalancer(*pred, 100.0, bad_g), std::invalid_argument);
  bad_g.initial_granularity = 1.5;
  EXPECT_THROW(ResourceBalancer(*pred, 100.0, bad_g), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::core
