#include "core/config_search.h"

#include <gtest/gtest.h>

#include "fake_models.h"

namespace sturgeon::core {
namespace {

const MachineSpec m = MachineSpec::xeon_e5_2630_v4();

TEST(ConfigSearch, FindsJustEnoughLsAllocation) {
  // Rule: cores * GHz >= kQPS, ways >= 3. At 12 kQPS the minimum LS core
  // count at 2.2 GHz is ceil(12/2.2) = 6.
  const auto pred = testing::fake_predictor(m, 1.0, 3);
  ConfigSearch search(*pred, 200.0);  // budget loose enough for max F2
  const auto r = search.search(12000.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.best.ls.cores, 6);
  EXPECT_GE(r.best.ls.llc_ways, 3);
  // The fake QoS rule is exactly satisfied.
  EXPECT_GE(r.best.ls.cores * m.freq_at(r.best.ls.freq_level), 12.0 - 1e-9);
  EXPECT_TRUE(r.best.valid_for(m));
}

TEST(ConfigSearch, BeThroughputPrefersWideSliceWhenPowerAllows) {
  const auto pred = testing::fake_predictor(m, 1.0, 3);
  ConfigSearch search(*pred, 250.0);
  const auto r = search.search(6000.0);
  ASSERT_TRUE(r.feasible);
  // With a loose budget the first (BE-widest) candidate already runs at
  // the top P-state, so the sweep stops immediately (Section V-B).
  EXPECT_EQ(r.best.be.freq_level, m.max_freq_level());
  EXPECT_GE(r.best.be.cores, 14);
}

TEST(ConfigSearch, PowerBudgetCapsBeFrequency) {
  const auto pred = testing::fake_predictor(m, 1.0, 3);
  ConfigSearch tight(*pred, 110.0);
  const auto r = tight.search(12000.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.predicted_power_w, 110.0 + 1e-9);
  ConfigSearch loose(*pred, 250.0);
  const auto r2 = loose.search(12000.0);
  EXPECT_GE(r2.predicted_throughput, r.predicted_throughput);
}

TEST(ConfigSearch, InfeasibleQosFallsBackToAllToLs) {
  // Demand so high even 20 cores at 2.2 GHz cannot serve it.
  const auto pred = testing::fake_predictor(m, 10.0, 3);
  ConfigSearch search(*pred, 200.0);
  const auto r = search.search(20000.0);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.best, Partition::all_to_ls(m));
  EXPECT_TRUE(r.candidates.empty());
}

TEST(ConfigSearch, InfeasiblePowerFallsBackToAllToLs) {
  const auto pred = testing::fake_predictor(m, 1.0, 3);
  ConfigSearch search(*pred, 25.0);  // below even the uncore + LS floor
  const auto r = search.search(6000.0);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.best, Partition::all_to_ls(m));
}

TEST(ConfigSearch, MatchesExhaustiveReference) {
  const auto pred = testing::fake_predictor(m, 1.0, 3);
  ConfigSearch search(*pred, 130.0);
  for (double qps : {4000.0, 10000.0, 16000.0, 24000.0}) {
    const auto fast = search.search(qps);
    const auto full = search.exhaustive(qps);
    ASSERT_EQ(fast.feasible, full.feasible) << qps;
    if (fast.feasible) {
      // The pruned search must be within a few percent of the oracle.
      EXPECT_GE(fast.predicted_throughput,
                0.93 * full.predicted_throughput)
          << qps;
    }
  }
}

TEST(ConfigSearch, PrunedSearchIsFarCheaper) {
  const auto pred = testing::fake_predictor(m, 1.0, 3);
  ConfigSearch search(*pred, 130.0);
  const auto fast = search.search(12000.0);
  const auto full = search.exhaustive(12000.0);
  EXPECT_LT(fast.model_invocations * 10, full.model_invocations);
  // Paper: O(N log N) -- a few hundred model calls, not tens of thousands.
  EXPECT_LT(fast.model_invocations, 600u);
  EXPECT_GT(full.model_invocations, 4000u);
}

TEST(ConfigSearch, CandidatesAreAllFeasible) {
  const auto pred = testing::fake_predictor(m, 1.0, 3);
  ConfigSearch search(*pred, 130.0);
  const auto r = search.search(12000.0);
  for (const auto& cand : r.candidates) {
    EXPECT_TRUE(cand.partition.valid_for(m));
    EXPECT_LE(cand.predicted_power_w, 130.0 + 1e-9);
    EXPECT_TRUE(pred->ls_qos_ok(12000.0, cand.partition.ls));
  }
}

TEST(ConfigSearch, ParallelSearchMatchesSequential) {
  const auto pred = testing::fake_predictor(m, 1.0, 3);
  ConfigSearch search(*pred, 130.0);
  ThreadPool pool(4);
  for (double qps : {4000.0, 12000.0, 20000.0, 30000.0}) {
    const auto seq = search.search(qps);
    const auto par = search.search_parallel(qps, pool);
    EXPECT_EQ(seq.feasible, par.feasible) << qps;
    EXPECT_EQ(seq.best, par.best) << qps;
    EXPECT_DOUBLE_EQ(seq.predicted_throughput, par.predicted_throughput);
    EXPECT_EQ(seq.candidates.size(), par.candidates.size());
  }
}

TEST(ConfigSearch, ParallelSearchInfeasibleFallback) {
  const auto pred = testing::fake_predictor(m, 10.0, 3);
  ConfigSearch search(*pred, 130.0);
  ThreadPool pool(2);
  const auto r = search.search_parallel(30000.0, pool);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.best, Partition::all_to_ls(m));
}

TEST(ConfigSearch, RejectsBadBudget) {
  const auto pred = testing::fake_predictor(m);
  EXPECT_THROW(ConfigSearch(*pred, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::core
