#include "core/predictor.h"

#include <gtest/gtest.h>

#include "fake_models.h"

namespace sturgeon::core {
namespace {

const MachineSpec m = MachineSpec::xeon_e5_2630_v4();

TEST(Predictor, RequiresAllModels) {
  TrainedModels incomplete = testing::fake_models();
  incomplete.be_power.reset();
  EXPECT_THROW(Predictor(m, incomplete), std::invalid_argument);
}

TEST(Predictor, QosRuleApplied) {
  // Rule: cores * freq >= 1.0 * kQPS and ways >= 3.
  const auto p = testing::fake_predictor(m, 1.0, 3);
  EXPECT_TRUE(p->ls_qos_ok(12000.0, {8, m.level_for(2.0), 5}));   // 16 >= 12
  EXPECT_FALSE(p->ls_qos_ok(20000.0, {8, m.level_for(2.0), 5}));  // 16 < 20
  EXPECT_FALSE(p->ls_qos_ok(1000.0, {8, m.level_for(2.0), 2}));   // ways
}

TEST(Predictor, ThroughputIsIpcTimesCoresTimesGhz) {
  const auto p = testing::fake_predictor(m);
  const AppSlice be{10, m.level_for(2.0), 10};
  const double ipc = p->be_ipc(be);
  EXPECT_NEAR(p->be_throughput(be), ipc * 10 * 2.0, 1e-9);
}

TEST(Predictor, EmptyBeSliceIsFree) {
  const auto p = testing::fake_predictor(m);
  const AppSlice none{0, 0, 0};
  EXPECT_DOUBLE_EQ(p->be_power_w(none), 0.0);
  EXPECT_DOUBLE_EQ(p->be_throughput(none), 0.0);
}

TEST(Predictor, TotalPowerComposes) {
  const auto p = testing::fake_predictor(m);
  Partition part;
  part.ls = {4, 4, 6};
  part.be = {16, 8, 14};
  EXPECT_NEAR(p->total_power_w(10000.0, part),
              p->ls_power_w(10000.0, part.ls) + p->be_power_w(part.be),
              1e-9);
}

TEST(Predictor, CountsInvocations) {
  const auto p = testing::fake_predictor(m);
  const auto base = p->model_invocations();
  p->ls_qos_ok(1000.0, {4, 4, 6});
  p->be_ipc({10, 8, 10});
  Partition part;
  part.ls = {4, 4, 6};
  part.be = {16, 8, 14};
  p->total_power_w(1000.0, part);  // ls_power + be_power = 2 calls
  EXPECT_EQ(p->model_invocations() - base, 4u);
}

}  // namespace
}  // namespace sturgeon::core
