#include "core/controller.h"

#include <gtest/gtest.h>

#include "fake_models.h"

namespace sturgeon::core {
namespace {

const MachineSpec m = MachineSpec::xeon_e5_2630_v4();

sim::ServerTelemetry sample(double p95, double qps_real) {
  sim::ServerTelemetry t;
  t.ls.p95_ms = p95;
  t.qps_real = qps_real;
  t.qos_target_ms = 10.0;
  return t;
}

SturgeonController make_controller(bool balancer = true) {
  SturgeonOptions opts;
  opts.enable_balancer = balancer;
  return SturgeonController(testing::fake_predictor(m, 1.0, 3), 10.0, 200.0,
                            opts);
}

TEST(Controller, InBandKeepsCurrentConfiguration) {
  auto ctl = make_controller();
  Partition cur;
  cur.ls = {8, 6, 8};
  cur.be = {12, 8, 12};
  // slack = (10 - 8.5) / 10 = 0.15: inside [0.1, 0.2].
  EXPECT_EQ(ctl.decide(sample(8.5, 8000.0), cur), cur);
  EXPECT_EQ(ctl.searches_run(), 0u);
}

TEST(Controller, HighSlackTriggersSearchAndFreesResources) {
  auto ctl = make_controller();
  const Partition cur = Partition::all_to_ls(m);
  // slack = 0.8 > beta: the controller searches and gives the BE a slice.
  const auto next = ctl.decide(sample(2.0, 8000.0), cur);
  EXPECT_EQ(ctl.searches_run(), 1u);
  EXPECT_GT(next.be.cores, 0);
  EXPECT_LT(next.ls.cores, m.num_cores);
  // The installed config satisfies the fake QoS rule.
  EXPECT_GE(next.ls.cores * m.freq_at(next.ls.freq_level), 8.0 - 1e-9);
}

TEST(Controller, LowSlackWithStaleSearchEngagesBalancer) {
  auto ctl = make_controller();
  // Install the search result for this load first.
  const auto installed =
      ctl.decide(sample(2.0, 8000.0), Partition::all_to_ls(m));
  ASSERT_GT(installed.be.cores, 0);
  // Now report a violation at the same load: the search proposes the same
  // configuration, so only the balancer can respond.
  const auto after = ctl.decide(sample(12.0, 8000.0), installed);
  EXPECT_NE(after, installed);
  EXPECT_GE(ctl.balancer_actions(), 1u);
  // The balancer moves resources toward the LS service.
  const bool ls_ward = after.ls.cores > installed.ls.cores ||
                       after.ls.llc_ways > installed.ls.llc_ways ||
                       after.be.freq_level < installed.be.freq_level;
  EXPECT_TRUE(ls_ward);
}

TEST(Controller, NoBalancerVariantStaysStuck) {
  auto ctl = make_controller(/*balancer=*/false);
  EXPECT_EQ(ctl.name(), "Sturgeon-NoB");
  const auto installed =
      ctl.decide(sample(2.0, 8000.0), Partition::all_to_ls(m));
  // Same load, violating latency: NoB re-searches, gets the same config,
  // and cannot react -- the paper's Fig 9 failure mode.
  const auto after = ctl.decide(sample(12.0, 8000.0), installed);
  EXPECT_EQ(after, installed);
  EXPECT_EQ(ctl.balancer_actions(), 0u);
}

TEST(Controller, ReservesPersistAcrossSearches) {
  auto ctl = make_controller();
  const auto installed =
      ctl.decide(sample(2.0, 8000.0), Partition::all_to_ls(m));
  // Force a balancer harvest.
  const auto harvested = ctl.decide(sample(12.0, 8000.0), installed);
  ASSERT_NE(harvested, installed);
  const auto reserves = ctl.reserves();
  EXPECT_GT(reserves.cores + reserves.ways + reserves.freq, 0);
  // A later search (load change, healthy latency) must keep the reserve
  // shift relative to the raw search result.
  const auto next = ctl.decide(sample(2.0, 4000.0), harvested);
  const bool shifted = next.ls.cores > installed.ls.cores ||
                       next.ls.llc_ways > installed.ls.llc_ways ||
                       next.be.freq_level < installed.be.freq_level;
  EXPECT_TRUE(shifted);
}

TEST(Controller, ReservesDecayDuringCalm) {
  SturgeonOptions opts;
  opts.reserve_decay_interval_s = 3;
  SturgeonController ctl(testing::fake_predictor(m, 1.0, 3), 10.0, 200.0,
                         opts);
  auto cur = ctl.decide(sample(2.0, 8000.0), Partition::all_to_ls(m));
  cur = ctl.decide(sample(12.0, 8000.0), cur);  // build a reserve
  const auto before = ctl.reserves();
  ASSERT_GT(before.cores + before.ways + before.freq, 0);
  // Several calm in-band intervals: reserves halve.
  for (int i = 0; i < 8; ++i) {
    cur = ctl.decide(sample(8.5, 8000.0), cur);
  }
  const auto after = ctl.reserves();
  EXPECT_LT(after.cores + after.ways + after.freq,
            before.cores + before.ways + before.freq);
}

TEST(Controller, ResetClearsState) {
  auto ctl = make_controller();
  auto cur = ctl.decide(sample(2.0, 8000.0), Partition::all_to_ls(m));
  ctl.decide(sample(12.0, 8000.0), cur);
  EXPECT_GT(ctl.searches_run(), 0u);
  ctl.reset();
  EXPECT_EQ(ctl.searches_run(), 0u);
  EXPECT_EQ(ctl.balancer_actions(), 0u);
  EXPECT_EQ(ctl.reserves().cores, 0);
}

TEST(Controller, RejectsBadArguments) {
  EXPECT_THROW(SturgeonController(nullptr, 10.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(
      SturgeonController(testing::fake_predictor(m), 0.0, 100.0),
      std::invalid_argument);
  SturgeonOptions bad;
  bad.beta = bad.alpha;
  EXPECT_THROW(
      SturgeonController(testing::fake_predictor(m), 10.0, 100.0, bad),
      std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::core
