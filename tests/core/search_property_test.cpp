// Property sweep of the configuration search across loads and fake-rule
// parameterizations: feasibility and optimality invariants of Section
// V-B's algorithm that must hold no matter where the QoS boundary sits.
#include <gtest/gtest.h>

#include "core/config_search.h"
#include "fake_models.h"

namespace sturgeon::core {
namespace {

const MachineSpec m = MachineSpec::xeon_e5_2630_v4();

struct SearchCase {
  double demand_per_kqps;
  int min_ways;
  double budget_w;
  double qps;
};

class SearchPropertyTest : public ::testing::TestWithParam<SearchCase> {};

TEST_P(SearchPropertyTest, ResultInvariants) {
  const auto& c = GetParam();
  const auto pred = testing::fake_predictor(m, c.demand_per_kqps,
                                            c.min_ways);
  ConfigSearch search(*pred, c.budget_w);
  const auto r = search.search(c.qps);

  if (!r.feasible) {
    EXPECT_EQ(r.best, Partition::all_to_ls(m));
    return;
  }
  // 1. The winning partition is expressible and QoS-positive.
  EXPECT_TRUE(r.best.valid_for(m));
  EXPECT_TRUE(pred->ls_qos_ok(c.qps, r.best.ls));
  // 2. Power within budget.
  EXPECT_LE(pred->total_power_w(c.qps, r.best), c.budget_w + 1e-9);
  EXPECT_LE(r.predicted_power_w, c.budget_w + 1e-9);
  // 3. The winner maximizes predicted throughput over the candidates.
  for (const auto& cand : r.candidates) {
    EXPECT_LE(cand.predicted_throughput, r.predicted_throughput + 1e-9);
  }
  // 4. The candidate sweep starts at the minimal QoS-feasible core count
  //    (power-infeasible candidates may be skipped, so the first listed
  //    candidate is >= that minimum, never below it).
  int min_cores = m.num_cores;
  for (int cores = 1; cores <= m.num_cores; ++cores) {
    if (pred->ls_qos_ok(c.qps,
                        AppSlice{cores, m.max_freq_level(), m.llc_ways})) {
      min_cores = cores;
      break;
    }
  }
  EXPECT_GE(r.candidates.front().partition.ls.cores, min_cores);
  // 5. Deterministic.
  const auto r2 = search.search(c.qps);
  EXPECT_EQ(r.best, r2.best);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SearchPropertyTest,
    ::testing::Values(
        // Vary boundary position, ways floor, budget tightness, load.
        SearchCase{1.0, 3, 200.0, 5000.0},
        SearchCase{1.0, 3, 200.0, 20000.0},
        SearchCase{1.0, 3, 110.0, 20000.0},
        SearchCase{1.0, 8, 130.0, 12000.0},
        SearchCase{0.5, 3, 130.0, 30000.0},
        SearchCase{2.0, 3, 150.0, 15000.0},
        SearchCase{2.0, 12, 150.0, 8000.0},
        SearchCase{1.5, 1, 100.0, 10000.0},
        SearchCase{1.0, 3, 90.0, 35000.0},
        SearchCase{3.0, 5, 160.0, 14000.0}));

}  // namespace
}  // namespace sturgeon::core
