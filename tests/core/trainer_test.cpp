// Trainer tests run a reduced profiling campaign (seconds, not minutes)
// and check dataset shape, label quality, model selection, and the
// Lasso feature-selection claim.
#include "core/trainer.h"

#include <gtest/gtest.h>

#include "core/features.h"
#include "core/predictor.h"
#include "util/stats.h"

namespace sturgeon::core {
namespace {

TrainerConfig small_config() {
  TrainerConfig cfg;
  cfg.ls_samples = 120;
  cfg.ls_boundary_searches = 25;
  cfg.be_samples = 100;
  cfg.intervals_per_sample = 2;
  cfg.seed = 0x5151;
  return cfg;
}

const LsProfilingData& ls_data() {
  static const LsProfilingData data =
      collect_ls_profiling(find_ls("memcached"), small_config());
  return data;
}

const BeProfilingData& be_data() {
  static const BeProfilingData data =
      collect_be_profiling(find_be("rt"), small_config());
  return data;
}

TEST(TrainerProfiles, LsDatasetShape) {
  const auto& data = ls_data();
  EXPECT_GE(data.x.size(), 120u);  // uniform + boundary probes
  EXPECT_EQ(data.x.size(), data.qos_ok.size());
  EXPECT_EQ(data.x.size(), data.power_w.size());
  for (const auto& row : data.x) {
    ASSERT_EQ(row.size(), 4u);
    EXPECT_GE(row[0], 0.0);        // kQPS
    EXPECT_GE(row[1], 1.0);        // cores
    EXPECT_GE(row[2], 1.2);        // GHz
    EXPECT_LE(row[2], 2.2);
    EXPECT_GE(row[3], 1.0);        // ways
  }
}

TEST(TrainerProfiles, LsLabelsContainBothClasses) {
  const auto& data = ls_data();
  int pos = 0, neg = 0;
  for (int l : data.qos_ok) (l ? pos : neg)++;
  EXPECT_GT(pos, 10);
  EXPECT_GT(neg, 10);
}

TEST(TrainerProfiles, LsPowerLabelsPlausible) {
  const auto& data = ls_data();
  for (double p : data.power_w) {
    EXPECT_GT(p, 15.0);
    EXPECT_LT(p, 200.0);
  }
}

TEST(TrainerProfiles, QosLabelsMonotoneOnAverage) {
  // Big slices should be labeled feasible far more often than tiny ones.
  const auto& data = ls_data();
  OnlineStats small_ok, big_ok;
  for (std::size_t i = 0; i < data.x.size(); ++i) {
    const double capacity = data.x[i][1] * data.x[i][2];  // cores * GHz
    const double load = data.x[i][0];                     // kQPS
    if (capacity > 2.5 * load) {
      big_ok.add(data.qos_ok[i]);
    } else if (capacity < 1.0 * load) {
      small_ok.add(data.qos_ok[i]);
    }
  }
  ASSERT_GT(big_ok.count(), 5u);
  ASSERT_GT(small_ok.count(), 5u);
  EXPECT_GT(big_ok.mean(), small_ok.mean() + 0.3);
}

TEST(TrainerProfiles, BeDatasetShape) {
  const auto& data = be_data();
  EXPECT_EQ(data.x.size(), 100u);
  EXPECT_GT(data.idle_power_w, 10.0);
  for (std::size_t i = 0; i < data.x.size(); ++i) {
    EXPECT_GT(data.ipc[i], 0.0);
    EXPECT_GE(data.power_w[i], 0.0);  // incremental above idle
  }
}

TEST(TrainerModels, TrainedModelsPredictSensibly) {
  const auto ls_models = train_ls_models(ls_data(), small_config());
  const auto be_models = train_be_models(be_data(), small_config());
  ASSERT_NE(ls_models.qos, nullptr);
  ASSERT_NE(ls_models.power, nullptr);
  EXPECT_EQ(ls_models.qos_accuracy.size(), 5u);   // five paper families
  EXPECT_EQ(be_models.ipc_r2.size(), 5u);

  const MachineSpec m = MachineSpec::xeon_e5_2630_v4();
  // Generous slice at low load: feasible; starved slice at high load: not.
  EXPECT_EQ(ls_models.qos->predict(
                ls_features(m, 6000.0, {16, m.max_freq_level(), 16})),
            1);
  EXPECT_EQ(ls_models.qos->predict(ls_features(m, 54000.0, {2, 0, 2})), 0);

  // Power rises with the slice size.
  const double small_p =
      ls_models.power->predict(ls_features(m, 12000.0, {4, 2, 6}));
  const double big_p = ls_models.power->predict(
      ls_features(m, 12000.0, {18, m.max_freq_level(), 18}));
  EXPECT_GT(big_p, small_p);

  // Assembled bundle drives a Predictor.
  const Predictor predictor(m, assemble_models(ls_models, be_models));
  EXPECT_GT(predictor.be_throughput({14, 8, 14}),
            predictor.be_throughput({4, 8, 14}));
}

TEST(TrainerModels, HoldoutScoresAreStrong) {
  const auto ls_models = train_ls_models(ls_data(), small_config());
  double best_acc = 0.0;
  for (const auto& [kind, acc] : ls_models.qos_accuracy) {
    (void)kind;
    best_acc = std::max(best_acc, acc);
  }
  EXPECT_GT(best_acc, 0.8);
  double best_r2 = 0.0;
  for (const auto& [kind, r2] : ls_models.power_r2) {
    (void)kind;
    best_r2 = std::max(best_r2, r2);
  }
  EXPECT_GT(best_r2, 0.9);
}

TEST(TrainerModels, LassoKeepsInformativeFeatures) {
  const auto& data = ls_data();
  const auto kept = lasso_selected_features(data.x, data.power_w, 0.05);
  // Cores and frequency dominate package power and must be kept.
  EXPECT_NE(std::find(kept.begin(), kept.end(), 1u), kept.end());
  EXPECT_NE(std::find(kept.begin(), kept.end(), 2u), kept.end());
}

TEST(TrainerConfigValidation, Rejected) {
  TrainerConfig bad = small_config();
  bad.ls_samples = 1;
  EXPECT_THROW(collect_ls_profiling(find_ls("memcached"), bad),
               std::invalid_argument);
  TrainerConfig bad2 = small_config();
  bad2.qos_label_margin = 0.0;
  EXPECT_THROW(collect_be_profiling(find_be("rt"), bad2),
               std::invalid_argument);
  LsProfilingData empty;
  EXPECT_THROW(train_ls_models(empty, small_config()),
               std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::core
