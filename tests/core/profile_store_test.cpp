#include "core/profile_store.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sturgeon::core {
namespace {

LsProfilingData sample_ls() {
  LsProfilingData d;
  d.x = {{12.0, 4, 1.6, 6}, {48.0, 16, 2.2, 18}};
  d.qos_ok = {1, 0};
  d.power_w = {55.25, 112.5};
  return d;
}

BeProfilingData sample_be() {
  BeProfilingData d;
  d.idle_power_w = 19.75;
  d.x = {{6.0, 14, 1.8, 12}};
  d.ipc = {0.8125};
  d.power_w = {61.0};
  return d;
}

TEST(ProfileStore, LsRoundTrip) {
  std::stringstream ss;
  save_ls_profiling(ss, sample_ls());
  const auto loaded = load_ls_profiling(ss);
  ASSERT_EQ(loaded.x.size(), 2u);
  EXPECT_EQ(loaded.x[0], (ml::FeatureRow{12.0, 4, 1.6, 6}));
  EXPECT_EQ(loaded.qos_ok, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(loaded.power_w[0], 55.25);
  EXPECT_DOUBLE_EQ(loaded.power_w[1], 112.5);
}

TEST(ProfileStore, BeRoundTrip) {
  std::stringstream ss;
  save_be_profiling(ss, sample_be());
  const auto loaded = load_be_profiling(ss);
  ASSERT_EQ(loaded.x.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.idle_power_w, 19.75);
  EXPECT_DOUBLE_EQ(loaded.ipc[0], 0.8125);
  EXPECT_DOUBLE_EQ(loaded.power_w[0], 61.0);
}

TEST(ProfileStore, LoadedDataTrainsModels) {
  std::stringstream ls_ss, be_ss;
  // Build a slightly larger synthetic campaign for trainable data.
  LsProfilingData ls;
  BeProfilingData be;
  be.idle_power_w = 20.0;
  for (int i = 0; i < 60; ++i) {
    const double cores = 1 + i % 19;
    const double freq = 1.2 + 0.1 * (i % 11);
    ls.x.push_back({double(5 + i), cores, freq, double(1 + i % 19)});
    ls.qos_ok.push_back(cores * freq > (5 + i) * 0.5 ? 1 : 0);
    ls.power_w.push_back(20 + cores * freq);
    be.x.push_back({6.0, cores, freq, double(1 + i % 19)});
    be.ipc.push_back(0.5 + 0.01 * (i % 19));
    be.power_w.push_back(cores * freq * 0.8);
  }
  save_ls_profiling(ls_ss, ls);
  save_be_profiling(be_ss, be);

  TrainerConfig cfg;
  const auto ls_models = train_ls_models(load_ls_profiling(ls_ss), cfg);
  const auto be_models = train_be_models(load_be_profiling(be_ss), cfg);
  EXPECT_NE(ls_models.qos, nullptr);
  EXPECT_DOUBLE_EQ(be_models.idle_power_w, 20.0);
}

TEST(ProfileStore, RejectsWrongHeader) {
  std::stringstream ss;
  ss << "not-a-profile\n";
  EXPECT_THROW(load_ls_profiling(ss), std::runtime_error);
  std::stringstream ss2;
  save_ls_profiling(ss2, sample_ls());
  EXPECT_THROW(load_be_profiling(ss2), std::runtime_error);  // LS-vs-BE mixup
}

TEST(ProfileStore, RejectsMalformedRows) {
  std::stringstream ss;
  ss << "sturgeon-ls-profile-v1\n"
     << "kqps,cores,freq_ghz,ways,qos_ok,power_w\n"
     << "1,2,3\n";
  EXPECT_THROW(load_ls_profiling(ss), std::runtime_error);

  std::stringstream ss2;
  ss2 << "sturgeon-ls-profile-v1\n"
      << "kqps,cores,freq_ghz,ways,qos_ok,power_w\n"
      << "1,2,3,4,oops,6\n";
  EXPECT_THROW(load_ls_profiling(ss2), std::runtime_error);

  std::stringstream ss3;
  ss3 << "sturgeon-ls-profile-v1\n"
      << "kqps,cores,freq_ghz,ways,qos_ok,power_w\n"
      << "1,2,3,4,7,6\n";  // label not 0/1
  EXPECT_THROW(load_ls_profiling(ss3), std::runtime_error);
}

TEST(ProfileStore, FileRoundTripAndErrors) {
  const std::string path = ::testing::TempDir() + "/ls_profile.csv";
  save_ls_profiling_file(path, sample_ls());
  const auto loaded = load_ls_profiling_file(path);
  EXPECT_EQ(loaded.x.size(), 2u);
  EXPECT_THROW(load_ls_profiling_file("/nonexistent/dir/x.csv"),
               std::runtime_error);
  EXPECT_THROW(save_ls_profiling_file("/nonexistent/dir/x.csv", sample_ls()),
               std::runtime_error);
}

}  // namespace
}  // namespace sturgeon::core
