#include "core/features.h"

#include <gtest/gtest.h>

namespace sturgeon::core {
namespace {

const MachineSpec m = MachineSpec::xeon_e5_2630_v4();

TEST(Features, LsLayoutAndUnits) {
  const AppSlice slice{4, m.level_for(1.6), 6};
  const auto row = ls_features(m, 12000.0, slice);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_DOUBLE_EQ(row[0], 12.0);  // kQPS
  EXPECT_DOUBLE_EQ(row[1], 4.0);
  EXPECT_DOUBLE_EQ(row[2], 1.6);
  EXPECT_DOUBLE_EQ(row[3], 6.0);
}

TEST(Features, BeLayoutAndUnits) {
  const AppSlice slice{16, m.max_freq_level(), 14};
  const auto row = be_features(m, kNativeInputLevel, slice);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_DOUBLE_EQ(row[0], 6.0);  // PARSEC native input level
  EXPECT_DOUBLE_EQ(row[1], 16.0);
  EXPECT_DOUBLE_EQ(row[2], 2.2);
  EXPECT_DOUBLE_EQ(row[3], 14.0);
}

TEST(Features, FrequencyComesFromTheMachineTable) {
  for (int level = 0; level < m.num_freq_levels(); ++level) {
    const AppSlice slice{1, level, 1};
    EXPECT_DOUBLE_EQ(ls_features(m, 0.0, slice)[2], m.freq_at(level));
  }
}

}  // namespace
}  // namespace sturgeon::core
