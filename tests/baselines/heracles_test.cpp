#include "baselines/heracles.h"

#include <gtest/gtest.h>

namespace sturgeon::baselines {
namespace {

const MachineSpec m = MachineSpec::xeon_e5_2630_v4();

sim::ServerTelemetry sample(double p95, double power) {
  sim::ServerTelemetry t;
  t.ls.p95_ms = p95;
  t.power_w = power;
  t.qos_target_ms = 10.0;
  return t;
}

HeraclesController make_heracles(double budget = 120.0) {
  HeraclesOptions opts;
  opts.power_budget_w = budget;
  return HeraclesController(m, 10.0, opts);
}

Partition mid() {
  Partition p;
  p.ls = {8, m.max_freq_level(), 8};
  p.be = {12, 5, 12};
  return p;
}

TEST(Heracles, LsAlwaysRunsFullSpeed) {
  auto ctl = make_heracles();
  Partition cur = mid();
  cur.ls.freq_level = 3;
  const auto next = ctl.decide(sample(8.5, 100.0), cur);
  EXPECT_EQ(next.ls.freq_level, m.max_freq_level());
}

TEST(Heracles, LowSlackGrowsLsAggressively) {
  auto ctl = make_heracles();
  const auto cur = mid();
  const auto next = ctl.decide(sample(9.8, 100.0), cur);
  EXPECT_EQ(next.ls.cores, cur.ls.cores + 2);
  EXPECT_EQ(next.ls.llc_ways, cur.ls.llc_ways + 2);
}

TEST(Heracles, HighSlackReleasesToBe) {
  auto ctl = make_heracles();
  const auto cur = mid();
  const auto next = ctl.decide(sample(3.0, 100.0), cur);
  EXPECT_EQ(next.ls.cores, cur.ls.cores - 1);
  EXPECT_EQ(next.be.cores, cur.be.cores + 1);
  EXPECT_EQ(next.be.llc_ways, cur.be.llc_ways + 1);
}

TEST(Heracles, PowerGuardUsesOnlyBeDvfs) {
  auto ctl = make_heracles(100.0);
  const auto cur = mid();
  const auto next = ctl.decide(sample(8.5, 99.5), cur);  // above guard
  EXPECT_EQ(next.be.freq_level, cur.be.freq_level - 1);
  EXPECT_EQ(next.be.cores, cur.be.cores);  // cores untouched by power
}

TEST(Heracles, PowerSlackRaisesBeFrequency) {
  auto ctl = make_heracles(100.0);
  const auto cur = mid();
  const auto next = ctl.decide(sample(8.5, 80.0), cur);  // below slack
  EXPECT_EQ(next.be.freq_level, cur.be.freq_level + 1);
}

TEST(Heracles, BootstrapsBeFromAllToLs) {
  auto ctl = make_heracles();
  const auto next =
      ctl.decide(sample(2.0, 80.0), Partition::all_to_ls(m));
  EXPECT_GT(next.be.cores, 0);
  // The power subcontroller may already raise the fresh slice one step.
  EXPECT_LE(next.be.freq_level, 1);
}

TEST(Heracles, RejectsBadOptions) {
  HeraclesOptions bad;
  bad.power_budget_w = 0.0;
  EXPECT_THROW(HeraclesController(m, 10.0, bad), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::baselines
