#include "baselines/parties.h"

#include <gtest/gtest.h>

namespace sturgeon::baselines {
namespace {

const MachineSpec m = MachineSpec::xeon_e5_2630_v4();

sim::ServerTelemetry sample(double p95, double power = 90.0) {
  sim::ServerTelemetry t;
  t.ls.p95_ms = p95;
  t.power_w = power;
  t.qos_target_ms = 10.0;
  return t;
}

PartiesController make_parties(double budget = 120.0) {
  PartiesOptions opts;
  opts.power_budget_w = budget;
  return PartiesController(m, 10.0, opts);
}

Partition mid() {
  Partition p;
  p.ls = {8, 5, 8};
  p.be = {12, 8, 12};
  return p;
}

TEST(Parties, NameReflectsEnhancement) {
  EXPECT_EQ(make_parties().name(), "PARTIES(power-enhanced)");
  PartiesOptions oblivious;
  EXPECT_EQ(PartiesController(m, 10.0, oblivious).name(), "PARTIES");
}

TEST(Parties, UpsizesOneResourceUnitOnLowSlack) {
  auto ctl = make_parties();
  const auto cur = mid();
  // slack = 0.05 < alpha: exactly one unit moves toward the LS service.
  const auto next = ctl.decide(sample(9.5), cur);
  const int delta = (next.ls.cores - cur.ls.cores) +
                    (next.ls.llc_ways - cur.ls.llc_ways) +
                    (next.ls.freq_level - cur.ls.freq_level);
  EXPECT_EQ(delta, 1);
}

TEST(Parties, ViolationMovesTwoUnits) {
  auto ctl = make_parties();
  const auto cur = mid();
  const auto next = ctl.decide(sample(12.0), cur);  // slack < 0
  const int delta = (next.ls.cores - cur.ls.cores) +
                    (next.ls.llc_ways - cur.ls.llc_ways) +
                    (next.ls.freq_level - cur.ls.freq_level);
  EXPECT_EQ(delta, 2);
}

TEST(Parties, RevertsUnhelpfulUpsizing) {
  auto ctl = make_parties();
  const auto cur = mid();
  const auto up = ctl.decide(sample(9.5), cur);
  ASSERT_NE(up, cur);
  // Next interval: latency did not improve -> the unit comes back and the
  // next resource type will be tried on the following upsizing.
  const auto reverted = ctl.decide(sample(9.5), up);
  EXPECT_EQ(reverted.ls.cores + reverted.ls.llc_ways +
                reverted.ls.freq_level,
            cur.ls.cores + cur.ls.llc_ways + cur.ls.freq_level);
}

TEST(Parties, KeepsHelpfulUpsizing) {
  auto ctl = make_parties();
  const auto cur = mid();
  const auto up = ctl.decide(sample(9.5), cur);
  ASSERT_NE(up, cur);
  // Latency improved into the band: the adjustment stays (the in-band
  // path may still raise the BE frequency, never shrink the LS side).
  const auto after = ctl.decide(sample(8.5), up);
  EXPECT_GE(after.ls.cores, up.ls.cores);
  EXPECT_GE(after.ls.llc_ways, up.ls.llc_ways);
}

TEST(Parties, PowerOverloadBacksOffBeFrequency) {
  auto ctl = make_parties(100.0);
  const auto cur = mid();
  const auto next = ctl.decide(sample(8.5, 105.0), cur);  // over budget
  EXPECT_EQ(next.be.freq_level, cur.be.freq_level - 1);
  EXPECT_EQ(next.ls, cur.ls);
}

TEST(Parties, PowerOverloadAtBottomPStateShrinksBe) {
  auto ctl = make_parties(100.0);
  Partition cur = mid();
  cur.be.freq_level = 0;
  const auto next = ctl.decide(sample(8.5, 105.0), cur);
  EXPECT_EQ(next.be.cores, cur.be.cores - 1);
}

TEST(Parties, BootstrapsBeSliceFromAllToLs) {
  auto ctl = make_parties();
  const auto cur = Partition::all_to_ls(m);
  const auto next = ctl.decide(sample(2.0, 80.0), cur);  // huge slack
  EXPECT_GT(next.be.cores, 0);
  EXPECT_GT(next.be.llc_ways, 0);
  EXPECT_EQ(next.be.freq_level, 0);  // power-aware start: lowest P-state
}

TEST(Parties, RaisesBeFrequencyWithPowerHeadroom) {
  auto ctl = make_parties(120.0);
  Partition cur = mid();
  cur.be.freq_level = 4;
  // In-band slack, power well below budget.
  const auto next = ctl.decide(sample(8.5, 90.0), cur);
  EXPECT_EQ(next.be.freq_level, 5);
  // Without headroom it stays put.
  ctl.reset();
  const auto hold = ctl.decide(sample(8.5, 118.0), cur);
  EXPECT_EQ(hold.be.freq_level, 4);
}

TEST(Parties, ProbesDownsizeAfterHealthyStreak) {
  PartiesOptions opts;
  opts.power_budget_w = 120.0;
  opts.probe_patience_s = 3;
  PartiesController ctl(m, 10.0, opts);
  Partition cur = mid();
  cur.be.freq_level = m.max_freq_level();  // nothing to raise in-band
  int ls_total_before =
      cur.ls.cores + cur.ls.llc_ways + cur.ls.freq_level;
  bool downsized = false;
  for (int i = 0; i < 8; ++i) {
    const auto next = ctl.decide(sample(8.3, 119.0), cur);  // slack 0.17
    const int ls_total =
        next.ls.cores + next.ls.llc_ways + next.ls.freq_level;
    if (ls_total < ls_total_before) {
      downsized = true;
      break;
    }
    cur = next;
    ls_total_before = ls_total;
  }
  EXPECT_TRUE(downsized);
}

TEST(Parties, RejectsBadOptions) {
  PartiesOptions bad;
  bad.beta = bad.alpha;
  EXPECT_THROW(PartiesController(m, 10.0, bad), std::invalid_argument);
  EXPECT_THROW(PartiesController(m, 0.0, PartiesOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::baselines
