#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <set>

namespace sturgeon::ml {
namespace {

DataSet make_data(std::size_t n) {
  DataSet d;
  for (std::size_t i = 0; i < n; ++i) {
    d.add({static_cast<double>(i), static_cast<double>(2 * i)},
          static_cast<double>(i));
  }
  return d;
}

TEST(DataSet, AddAndValidate) {
  auto d = make_data(5);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_NO_THROW(d.validate());
  EXPECT_THROW(d.add({1.0}, 0.0), std::invalid_argument);  // arity mismatch
}

TEST(DataSet, ValidateCatchesRaggedAndMismatch) {
  DataSet d = make_data(3);
  d.x.push_back({1.0});  // ragged, bypassing add()
  d.y.push_back(0.0);
  EXPECT_THROW(d.validate(), std::invalid_argument);

  DataSet e = make_data(3);
  e.y.pop_back();
  EXPECT_THROW(e.validate(), std::invalid_argument);
}

TEST(TrainTestSplit, PartitionsWithoutOverlapOrLoss) {
  const auto d = make_data(100);
  const auto split = train_test_split(d, 0.25, 42);
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_EQ(split.train.size(), 75u);
  std::set<double> seen;
  for (const auto& row : split.train.x) seen.insert(row[0]);
  for (const auto& row : split.test.x) {
    EXPECT_EQ(seen.count(row[0]), 0u) << "row leaked into both splits";
    seen.insert(row[0]);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(TrainTestSplit, DeterministicPerSeed) {
  const auto d = make_data(50);
  const auto a = train_test_split(d, 0.2, 7);
  const auto b = train_test_split(d, 0.2, 7);
  EXPECT_EQ(a.test.x, b.test.x);
  const auto c = train_test_split(d, 0.2, 8);
  EXPECT_NE(a.test.x, c.test.x);
}

TEST(TrainTestSplit, RejectsBadFraction) {
  const auto d = make_data(10);
  EXPECT_THROW(train_test_split(d, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(train_test_split(d, 1.0, 1), std::invalid_argument);
}

TEST(KFold, CoversAllIndicesOnce) {
  const auto folds = kfold_indices(23, 5, 3);
  EXPECT_EQ(folds.size(), 5u);
  std::set<std::size_t> seen;
  for (const auto& f : folds) {
    for (std::size_t i : f) {
      EXPECT_TRUE(seen.insert(i).second);
    }
  }
  EXPECT_EQ(seen.size(), 23u);
  EXPECT_THROW(kfold_indices(3, 1, 0), std::invalid_argument);
  EXPECT_THROW(kfold_indices(3, 4, 0), std::invalid_argument);
}

TEST(Subset, GathersRows) {
  const auto d = make_data(10);
  const auto s = subset(d, {0, 9, 3});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.y[1], 9.0);
  EXPECT_THROW(subset(d, {10}), std::out_of_range);
}

TEST(StandardScaler, ZeroMeanUnitVariance) {
  StandardScaler sc;
  std::vector<FeatureRow> x{{1.0, 100.0}, {2.0, 200.0}, {3.0, 300.0}};
  sc.fit(x);
  const auto xt = sc.transform(x);
  double mean0 = 0, mean1 = 0;
  for (const auto& r : xt) {
    mean0 += r[0];
    mean1 += r[1];
  }
  EXPECT_NEAR(mean0 / 3.0, 0.0, 1e-12);
  EXPECT_NEAR(mean1 / 3.0, 0.0, 1e-12);
  double var0 = 0;
  for (const auto& r : xt) var0 += r[0] * r[0];
  EXPECT_NEAR(var0 / 3.0, 1.0, 1e-12);
}

TEST(StandardScaler, ConstantFeatureMapsToZero) {
  StandardScaler sc;
  sc.fit({{5.0, 1.0}, {5.0, 2.0}});
  const auto r = sc.transform(FeatureRow{5.0, 1.5});
  EXPECT_DOUBLE_EQ(r[0], 0.0);
}

TEST(StandardScaler, ErrorsOnMisuse) {
  StandardScaler sc;
  EXPECT_THROW(sc.transform(FeatureRow{1.0}), std::logic_error);
  EXPECT_THROW(sc.fit({}), std::invalid_argument);
  sc.fit({{1.0, 2.0}});
  EXPECT_THROW(sc.transform(FeatureRow{1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::ml
