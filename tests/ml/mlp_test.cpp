#include "ml/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace sturgeon::ml {
namespace {

TEST(MlpRegressor, LearnsSmoothNonlinearFunction) {
  Rng rng(81);
  DataSet train, test;
  for (int i = 0; i < 1200; ++i) {
    const double a = rng.uniform(-2, 2);
    const double b = rng.uniform(-2, 2);
    const double y = std::sin(a) + 0.3 * b * b;
    (i < 1000 ? train : test).add({a, b}, y);
  }
  MlpParams mp;
  mp.hidden = {16, 16};
  mp.epochs = 200;
  MlpRegressor mlp(mp);
  mlp.fit(train);
  EXPECT_GT(r_squared(test.y, mlp.predict_batch(test.x)), 0.95);
}

TEST(MlpRegressor, DeterministicPerSeed) {
  DataSet d;
  Rng rng(82);
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(0, 1);
    d.add({a}, 2.0 * a);
  }
  MlpParams mp;
  mp.epochs = 30;
  mp.seed = 11;
  MlpRegressor m1(mp), m2(mp);
  m1.fit(d);
  m2.fit(d);
  EXPECT_DOUBLE_EQ(m1.predict({0.4}), m2.predict({0.4}));
}

TEST(MlpRegressor, ConstantTargetSafe) {
  DataSet d;
  for (int i = 0; i < 40; ++i) d.add({static_cast<double>(i)}, 2.5);
  MlpParams mp;
  mp.epochs = 50;
  MlpRegressor mlp(mp);
  mlp.fit(d);
  EXPECT_NEAR(mlp.predict({20.0}), 2.5, 0.3);
}

TEST(MlpRegressor, Errors) {
  MlpParams bad;
  bad.epochs = 0;
  EXPECT_THROW(MlpRegressor{bad}, std::invalid_argument);
  MlpRegressor mlp;
  EXPECT_THROW(mlp.predict({1.0}), std::logic_error);
  EXPECT_THROW(mlp.fit(DataSet{}), std::invalid_argument);
}

TEST(MlpClassifier, LearnsXor) {
  std::vector<FeatureRow> x;
  std::vector<int> y;
  Rng rng(83);
  for (int i = 0; i < 600; ++i) {
    const double a = rng.uniform(0, 1);
    const double b = rng.uniform(0, 1);
    x.push_back({a, b});
    y.push_back((a > 0.5) != (b > 0.5) ? 1 : 0);
  }
  MlpParams mp;
  mp.hidden = {12, 12};
  mp.epochs = 400;
  MlpClassifier mlp(mp);
  mlp.fit(x, y);
  EXPECT_GE(accuracy(y, mlp.predict_batch(x)), 0.95);
}

TEST(MlpClassifier, ProbaBounds) {
  std::vector<FeatureRow> x{{0.0}, {1.0}, {0.1}, {0.9}};
  std::vector<int> y{0, 1, 0, 1};
  MlpParams mp;
  mp.epochs = 200;
  MlpClassifier mlp(mp);
  mlp.fit(x, y);
  const double p0 = mlp.predict_proba({0.0});
  const double p1 = mlp.predict_proba({1.0});
  EXPECT_GE(p0, 0.0);
  EXPECT_LE(p0, 1.0);
  EXPECT_LT(p0, p1);
}

TEST(MlpClassifier, Errors) {
  MlpClassifier mlp;
  EXPECT_THROW(mlp.predict({1.0}), std::logic_error);
  EXPECT_THROW(mlp.fit({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::ml
