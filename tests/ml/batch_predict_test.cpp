// Batched inference contract: for every model family, predict_batch must
// reproduce the scalar predict() bit-for-bit (same accumulation order),
// because the core prediction cache serves batched results where the
// uncached path would have called predict() -- search results must not
// change when the cache is enabled.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ml/factory.h"
#include "util/rng.h"

namespace sturgeon::ml {
namespace {

constexpr std::size_t kArity = 4;  // the Sturgeon feature arity

DataSet random_regression_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  DataSet d;
  for (std::size_t i = 0; i < n; ++i) {
    FeatureRow row(kArity);
    for (auto& v : row) v = rng.uniform(0.0, 4.0);
    const double y =
        2.0 * row[0] + row[1] * row[2] - 0.5 * row[3] + rng.uniform(-0.1, 0.1);
    d.add(row, y);
  }
  return d;
}

std::vector<FeatureRow> random_rows(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureRow> rows(n);
  for (auto& row : rows) {
    row.resize(kArity);
    for (auto& v : row) v = rng.uniform(-1.0, 5.0);
  }
  return rows;
}

std::vector<double> flatten(const std::vector<FeatureRow>& rows) {
  std::vector<double> flat;
  flat.reserve(rows.size() * kArity);
  for (const auto& row : rows) flat.insert(flat.end(), row.begin(), row.end());
  return flat;
}

std::vector<ModelKind> regressor_kinds() {
  return {ModelKind::kLinear,       ModelKind::kLasso, ModelKind::kDecisionTree,
          ModelKind::kRandomForest, ModelKind::kKnn,   ModelKind::kSvm,
          ModelKind::kMlp};
}

std::vector<ModelKind> classifier_kinds() {
  return {ModelKind::kLinear, ModelKind::kDecisionTree,
          ModelKind::kRandomForest, ModelKind::kKnn, ModelKind::kSvm,
          ModelKind::kMlp};
}

TEST(BatchPredict, RegressorsBitIdenticalToScalar) {
  const auto train = random_regression_data(240, 11);
  const auto rows = random_rows(64, 12);
  const auto flat = flatten(rows);
  for (ModelKind kind : regressor_kinds()) {
    auto model = make_regressor(kind);
    model->fit(train);
    std::vector<double> batch(rows.size());
    model->predict_batch(flat.data(), rows.size(), kArity, batch.data());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(batch[i]),
                std::bit_cast<std::uint64_t>(model->predict(rows[i])))
          << to_string(kind) << " row " << i;
    }
    // The vector<FeatureRow> convenience overload must agree too.
    const auto vec = model->predict_batch(rows);
    ASSERT_EQ(vec.size(), rows.size()) << to_string(kind);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(vec[i]),
                std::bit_cast<std::uint64_t>(batch[i]))
          << to_string(kind) << " row " << i;
    }
  }
}

TEST(BatchPredict, ClassifiersMatchScalar) {
  const auto rows = random_rows(200, 13);
  std::vector<int> labels(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    labels[i] = rows[i][0] + rows[i][1] > rows[i][2] + rows[i][3] ? 1 : 0;
  }
  const auto test_rows = random_rows(64, 14);
  const auto flat = flatten(test_rows);
  for (ModelKind kind : classifier_kinds()) {
    auto model = make_classifier(kind);
    model->fit(rows, labels);
    std::vector<int> batch(test_rows.size());
    model->predict_batch(flat.data(), test_rows.size(), kArity, batch.data());
    for (std::size_t i = 0; i < test_rows.size(); ++i) {
      EXPECT_EQ(batch[i], model->predict(test_rows[i]))
          << to_string(kind) << " row " << i;
    }
    const auto vec = model->predict_batch(test_rows);
    ASSERT_EQ(vec.size(), test_rows.size()) << to_string(kind);
    for (std::size_t i = 0; i < test_rows.size(); ++i) {
      EXPECT_EQ(vec[i], batch[i]) << to_string(kind) << " row " << i;
    }
  }
}

TEST(BatchPredict, EmptyBatchIsNoop) {
  auto model = make_regressor(ModelKind::kLinear);
  model->fit(random_regression_data(50, 15));
  double sentinel = 42.0;
  model->predict_batch(nullptr, 0, kArity, &sentinel);
  EXPECT_EQ(sentinel, 42.0);
  EXPECT_TRUE(model->predict_batch(std::vector<FeatureRow>{}).empty());
}

TEST(BatchPredict, RaggedRowsRejected) {
  auto model = make_regressor(ModelKind::kLinear);
  model->fit(random_regression_data(50, 16));
  std::vector<FeatureRow> ragged = {{1.0, 2.0, 3.0, 4.0}, {1.0, 2.0}};
  EXPECT_THROW(model->predict_batch(ragged), std::invalid_argument);
}

TEST(BatchPredict, ArityMismatchRejected) {
  const auto train = random_regression_data(50, 17);
  std::vector<double> xs(6, 1.0);
  std::vector<double> out(2);
  for (ModelKind kind : {ModelKind::kLinear, ModelKind::kKnn, ModelKind::kSvm,
                         ModelKind::kMlp}) {
    auto model = make_regressor(kind);
    model->fit(train);
    EXPECT_THROW(model->predict_batch(xs.data(), 2, 3, out.data()),
                 std::invalid_argument)
        << to_string(kind);
  }
}

TEST(BatchPredict, UnfittedRejected) {
  std::vector<double> xs(kArity, 1.0);
  double out = 0.0;
  for (ModelKind kind : {ModelKind::kLinear, ModelKind::kKnn,
                         ModelKind::kSvm, ModelKind::kMlp}) {
    auto model = make_regressor(kind);
    EXPECT_THROW(model->predict_batch(xs.data(), 1, kArity, &out),
                 std::logic_error)
        << to_string(kind);
  }
}

}  // namespace
}  // namespace sturgeon::ml
