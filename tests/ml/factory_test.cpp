#include "ml/factory.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sturgeon::ml {
namespace {

DataSet quadratic_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  DataSet d;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0, 2);
    const double b = rng.uniform(0, 2);
    d.add({a, b}, a * a + b);
  }
  return d;
}

TEST(Factory, AllRegressorKindsConstructAndFit) {
  const auto data = quadratic_data(300, 91);
  for (ModelKind kind :
       {ModelKind::kLinear, ModelKind::kLasso, ModelKind::kDecisionTree,
        ModelKind::kRandomForest, ModelKind::kKnn, ModelKind::kSvm,
        ModelKind::kMlp}) {
    auto model = make_regressor(kind);
    ASSERT_NE(model, nullptr) << to_string(kind);
    model->fit(data);
    const double pred = model->predict({1.0, 1.0});
    EXPECT_GT(pred, 0.0) << to_string(kind);
    EXPECT_LT(pred, 6.0) << to_string(kind);
  }
}

TEST(Factory, AllClassifierKindsConstructAndFit) {
  std::vector<FeatureRow> x;
  std::vector<int> y;
  Rng rng(92);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(0, 1);
    x.push_back({a, 1.0 - a});
    y.push_back(a > 0.5 ? 1 : 0);
  }
  for (ModelKind kind :
       {ModelKind::kLinear, ModelKind::kDecisionTree, ModelKind::kRandomForest,
        ModelKind::kKnn, ModelKind::kSvm, ModelKind::kMlp}) {
    auto model = make_classifier(kind);
    ASSERT_NE(model, nullptr) << to_string(kind);
    model->fit(x, y);
    EXPECT_EQ(model->predict({0.95, 0.05}), 1) << to_string(kind);
    EXPECT_EQ(model->predict({0.05, 0.95}), 0) << to_string(kind);
  }
  EXPECT_THROW(make_classifier(ModelKind::kLasso), std::invalid_argument);
}

TEST(Factory, PaperKindSetsMatchFigure6And7) {
  const auto reg = paper_regression_kinds();
  const auto clf = paper_classification_kinds();
  EXPECT_EQ(reg.size(), 5u);
  EXPECT_EQ(clf.size(), 5u);
  EXPECT_EQ(to_string(reg[0]), "DT");
  EXPECT_EQ(to_string(reg.back()), "LR");
}

TEST(Factory, HoldoutR2RanksSanely) {
  const auto data = quadratic_data(600, 93);
  const auto split = train_test_split(data, 0.3, 94);
  auto knn = make_regressor(ModelKind::kKnn);
  const double knn_r2 = holdout_r2(*knn, split.train, split.test);
  EXPECT_GT(knn_r2, 0.95);  // smooth surface: KNN should nail it
}

TEST(Factory, KfoldR2Reasonable) {
  const auto data = quadratic_data(400, 95);
  const double r2 = kfold_r2(ModelKind::kDecisionTree, data, 4, 96);
  EXPECT_GT(r2, 0.85);
}

TEST(Factory, HoldoutAccuracy) {
  std::vector<FeatureRow> x;
  std::vector<int> y;
  Rng rng(97);
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(-1, 1);
    x.push_back({a});
    y.push_back(a > 0 ? 1 : 0);
  }
  std::vector<FeatureRow> xtr(x.begin(), x.begin() + 200);
  std::vector<int> ytr(y.begin(), y.begin() + 200);
  std::vector<FeatureRow> xte(x.begin() + 200, x.end());
  std::vector<int> yte(y.begin() + 200, y.end());
  auto dt = make_classifier(ModelKind::kDecisionTree);
  EXPECT_GT(holdout_accuracy(*dt, xtr, ytr, xte, yte), 0.9);
}

}  // namespace
}  // namespace sturgeon::ml
