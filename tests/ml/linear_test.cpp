#include "ml/linear.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace sturgeon::ml {
namespace {

DataSet linear_data(std::size_t n, double noise, std::uint64_t seed) {
  // y = 3 + 2*x0 - 1.5*x1 (+ noise); x2 is irrelevant.
  Rng rng(seed);
  DataSet d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(0, 10);
    const double x1 = rng.uniform(-5, 5);
    const double x2 = rng.uniform(0, 1);
    d.add({x0, x1, x2}, 3.0 + 2.0 * x0 - 1.5 * x1 + rng.normal(0, noise));
  }
  return d;
}

TEST(LinearRegression, RecoversExactCoefficients) {
  LinearRegression lr(0.0);
  lr.fit(linear_data(200, 0.0, 1));
  EXPECT_NEAR(lr.intercept(), 3.0, 1e-6);
  EXPECT_NEAR(lr.coefficients()[0], 2.0, 1e-6);
  EXPECT_NEAR(lr.coefficients()[1], -1.5, 1e-6);
  EXPECT_NEAR(lr.coefficients()[2], 0.0, 1e-6);
}

TEST(LinearRegression, HighR2UnderNoise) {
  const auto train = linear_data(500, 0.5, 2);
  const auto test = linear_data(200, 0.5, 3);
  LinearRegression lr;
  lr.fit(train);
  EXPECT_GT(r_squared(test.y, lr.predict_batch(test.x)), 0.98);
}

TEST(LinearRegression, PredictBeforeFitThrows) {
  LinearRegression lr;
  EXPECT_THROW(lr.predict({1.0, 2.0, 3.0}), std::logic_error);
  EXPECT_THROW(lr.fit(DataSet{}), std::invalid_argument);
}

TEST(LinearRegression, ArityMismatchThrows) {
  LinearRegression lr;
  lr.fit(linear_data(50, 0.0, 4));
  EXPECT_THROW(lr.predict({1.0}), std::invalid_argument);
}

TEST(LassoRegression, ShrinksIrrelevantFeatureToZero) {
  LassoRegression lasso(0.5, 2000);
  lasso.fit(linear_data(400, 0.1, 5));
  const auto sel = lasso.selected_features();
  // x0 and x1 selected, x2 dropped.
  ASSERT_GE(sel.size(), 2u);
  EXPECT_DOUBLE_EQ(lasso.coefficients()[2], 0.0);
}

TEST(LassoRegression, SelectedFeaturesOrderedByMagnitude) {
  LassoRegression lasso(0.05, 2000);
  lasso.fit(linear_data(400, 0.1, 6));
  const auto sel = lasso.selected_features();
  ASSERT_GE(sel.size(), 2u);
  // x0 (|2| scaled by x0 spread ~2.9) dominates x1 (|1.5| * spread ~2.9).
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[1], 1u);
}

TEST(LassoRegression, PredictsReasonably) {
  LassoRegression lasso(0.01, 2000);
  const auto train = linear_data(400, 0.2, 7);
  const auto test = linear_data(100, 0.2, 8);
  lasso.fit(train);
  EXPECT_GT(r_squared(test.y, lasso.predict_batch(test.x)), 0.97);
}

TEST(LassoRegression, HugeLambdaGivesInterceptOnlyModel) {
  LassoRegression lasso(1e6);
  const auto d = linear_data(100, 0.0, 9);
  lasso.fit(d);
  for (double c : lasso.coefficients()) EXPECT_DOUBLE_EQ(c, 0.0);
  EXPECT_TRUE(lasso.selected_features().empty());
}

TEST(LassoRegression, BadHyperparametersThrow) {
  EXPECT_THROW(LassoRegression(-1.0), std::invalid_argument);
  EXPECT_THROW(LassoRegression(0.1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::ml
