#include "ml/forest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace sturgeon::ml {
namespace {

TEST(RandomForestRegressor, BeatsNoiseBetterThanNothing) {
  Rng rng(61);
  DataSet train, test;
  for (int i = 0; i < 1200; ++i) {
    const double a = rng.uniform(0, 3);
    const double b = rng.uniform(0, 3);
    const double y = std::sin(a) * 2.0 + b * b + rng.normal(0, 0.1);
    (i < 1000 ? train : test).add({a, b}, y);
  }
  ForestParams fp;
  fp.num_trees = 20;
  RandomForestRegressor rf(fp);
  rf.fit(train);
  EXPECT_EQ(rf.num_trees(), 20u);
  EXPECT_GT(r_squared(test.y, rf.predict_batch(test.x)), 0.95);
}

TEST(RandomForestRegressor, DeterministicPerSeed) {
  DataSet d;
  Rng rng(62);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(0, 1);
    d.add({a}, a * a);
  }
  ForestParams fp;
  fp.seed = 5;
  RandomForestRegressor r1(fp), r2(fp);
  r1.fit(d);
  r2.fit(d);
  EXPECT_DOUBLE_EQ(r1.predict({0.3}), r2.predict({0.3}));
}

TEST(RandomForestRegressor, Errors) {
  ForestParams fp;
  fp.num_trees = 0;
  EXPECT_THROW(RandomForestRegressor{fp}, std::invalid_argument);
  RandomForestRegressor rf;
  EXPECT_THROW(rf.predict({1.0}), std::logic_error);
}

TEST(RandomForestClassifier, LearnsXor) {
  std::vector<FeatureRow> x;
  std::vector<int> y;
  Rng rng(63);
  for (int i = 0; i < 600; ++i) {
    const double a = rng.uniform(0, 1);
    const double b = rng.uniform(0, 1);
    x.push_back({a, b});
    y.push_back((a > 0.5) != (b > 0.5) ? 1 : 0);
  }
  RandomForestClassifier rf;
  rf.fit(x, y);
  EXPECT_GE(accuracy(y, rf.predict_batch(x)), 0.95);
}

TEST(RandomForestClassifier, Errors) {
  RandomForestClassifier rf;
  EXPECT_THROW(rf.predict({1.0}), std::logic_error);
  EXPECT_THROW(rf.fit({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::ml
