#include "ml/svm.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace sturgeon::ml {
namespace {

TEST(SvmClassifier, SeparatesWithMargin) {
  std::vector<FeatureRow> x;
  std::vector<int> y;
  Rng rng(71);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(-3, 3);
    const double b = rng.uniform(-3, 3);
    const double s = a - b;
    if (std::abs(s) < 0.4) continue;
    x.push_back({a, b});
    y.push_back(s > 0 ? 1 : 0);
  }
  SvmClassifier svm;
  svm.fit(x, y);
  EXPECT_GE(accuracy(y, svm.predict_batch(x)), 0.97);
  // Decision function sign matches labels far from the boundary.
  EXPECT_GT(svm.decision_function({3.0, -3.0}), 0.0);
  EXPECT_LT(svm.decision_function({-3.0, 3.0}), 0.0);
}

TEST(SvmClassifier, DeterministicPerSeed) {
  std::vector<FeatureRow> x{{0, 0}, {1, 1}, {0, 1}, {1, 0},
                            {2, 2}, {-1, -1}, {3, 3}, {-2, -2}};
  std::vector<int> y{0, 1, 0, 1, 1, 0, 1, 0};
  SvmClassifier a(1e-3, 40, 9), b(1e-3, 40, 9);
  a.fit(x, y);
  b.fit(x, y);
  for (double v = -2.0; v <= 2.0; v += 0.5) {
    EXPECT_EQ(a.predict({v, 0.0}), b.predict({v, 0.0}));
  }
}

TEST(SvmClassifier, Errors) {
  EXPECT_THROW(SvmClassifier(0.0), std::invalid_argument);
  SvmClassifier svm;
  EXPECT_THROW(svm.predict({1.0}), std::logic_error);
  EXPECT_THROW(svm.fit({{1.0}}, {5}), std::invalid_argument);
}

TEST(SvRegressor, FitsLinearTrend) {
  Rng rng(73);
  DataSet train, test;
  for (int i = 0; i < 700; ++i) {
    const double a = rng.uniform(0, 10);
    const double b = rng.uniform(0, 10);
    const double y = 1.0 + 0.7 * a - 0.3 * b + rng.normal(0, 0.05);
    (i < 500 ? train : test).add({a, b}, y);
  }
  SvRegressor svr;
  svr.fit(train);
  EXPECT_GT(r_squared(test.y, svr.predict_batch(test.x)), 0.95);
}

TEST(SvRegressor, ConstantTargetSafe) {
  DataSet d;
  for (int i = 0; i < 30; ++i) d.add({static_cast<double>(i)}, 4.0);
  SvRegressor svr;
  svr.fit(d);
  EXPECT_NEAR(svr.predict({15.0}), 4.0, 0.5);
}

TEST(SvRegressor, Errors) {
  EXPECT_THROW(SvRegressor(0.0), std::invalid_argument);
  EXPECT_THROW(SvRegressor(1.0, -0.1), std::invalid_argument);
  SvRegressor svr;
  EXPECT_THROW(svr.predict({1.0}), std::logic_error);
}

}  // namespace
}  // namespace sturgeon::ml
