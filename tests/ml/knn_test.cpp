#include "ml/knn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace sturgeon::ml {
namespace {

TEST(KnnIndices, FindsNearest) {
  const std::vector<FeatureRow> rows{{0, 0}, {1, 0}, {5, 5}, {0.1, 0.1}};
  const auto idx = detail::knn_indices(rows, {0, 0}, 2);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 3u);
}

TEST(KnnIndices, KLargerThanSetClamps) {
  const std::vector<FeatureRow> rows{{0.0}, {1.0}};
  EXPECT_EQ(detail::knn_indices(rows, {0.0}, 10).size(), 2u);
}

TEST(KnnRegressor, InterpolatesSmoothFunction) {
  Rng rng(41);
  DataSet d;
  for (int i = 0; i < 800; ++i) {
    const double a = rng.uniform(0, 2 * M_PI);
    const double b = rng.uniform(0, 1);
    d.add({a, b}, std::sin(a) + 0.5 * b);
  }
  KnnRegressor knn(5);
  knn.fit(d);
  DataSet test;
  Rng rng2(42);
  for (int i = 0; i < 200; ++i) {
    const double a = rng2.uniform(0.2, 2 * M_PI - 0.2);
    const double b = rng2.uniform(0.1, 0.9);
    test.add({a, b}, std::sin(a) + 0.5 * b);
  }
  EXPECT_GT(r_squared(test.y, knn.predict_batch(test.x)), 0.97);
}

TEST(KnnRegressor, ExactOnTrainingPointsWhenWeighted) {
  DataSet d;
  d.add({0.0, 0.0}, 1.0);
  d.add({1.0, 0.0}, 2.0);
  d.add({0.0, 1.0}, 3.0);
  KnnRegressor knn(3, /*weighted=*/true);
  knn.fit(d);
  // Query at a training point: inverse-distance weight dominates.
  EXPECT_NEAR(knn.predict({1.0, 0.0}), 2.0, 1e-3);
}

TEST(KnnRegressor, UnweightedAveragesNeighbors) {
  DataSet d;
  d.add({0.0}, 1.0);
  d.add({1.0}, 3.0);
  KnnRegressor knn(2, /*weighted=*/false);
  knn.fit(d);
  EXPECT_DOUBLE_EQ(knn.predict({0.5}), 2.0);
}

TEST(KnnRegressor, Errors) {
  EXPECT_THROW(KnnRegressor(0), std::invalid_argument);
  KnnRegressor knn(3);
  EXPECT_THROW(knn.predict({1.0}), std::logic_error);
  EXPECT_THROW(knn.fit(DataSet{}), std::invalid_argument);
}

TEST(KnnClassifier, MajorityVote) {
  std::vector<FeatureRow> x{{0, 0}, {0.1, 0}, {0, 0.1}, {5, 5}, {5.1, 5}};
  std::vector<int> y{0, 0, 0, 1, 1};
  KnnClassifier knn(3);
  knn.fit(x, y);
  EXPECT_EQ(knn.predict({0.05, 0.05}), 0);
  EXPECT_EQ(knn.predict({5.0, 5.1}), 1);
}

TEST(KnnClassifier, ScalingMattersAndIsApplied) {
  // Feature 1 has a huge raw scale; without standardization it would
  // dominate the distance and mislabel the query.
  std::vector<FeatureRow> x{{0.0, 1000.0}, {1.0, 1000.0},
                            {0.0, 1010.0}, {1.0, 1010.0}};
  std::vector<int> y{0, 1, 0, 1};
  KnnClassifier knn(1);
  knn.fit(x, y);
  EXPECT_EQ(knn.predict({0.9, 1001.0}), 1);
}

TEST(KnnClassifier, Errors) {
  EXPECT_THROW(KnnClassifier(0), std::invalid_argument);
  KnnClassifier knn(3);
  EXPECT_THROW(knn.predict({1.0}), std::logic_error);
  EXPECT_THROW(knn.fit({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::ml
