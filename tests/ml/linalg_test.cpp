#include "ml/linalg.h"

#include <gtest/gtest.h>

namespace sturgeon::ml {
namespace {

TEST(SolveLinearSystem, Identity) {
  const auto x = solve_linear_system({{1, 0}, {0, 1}}, {3, -2});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
}

TEST(SolveLinearSystem, RequiresPivoting) {
  // First pivot is zero; partial pivoting must swap rows.
  const auto x = solve_linear_system({{0, 1}, {2, 0}}, {5, 8});
  EXPECT_DOUBLE_EQ(x[0], 4.0);
  EXPECT_DOUBLE_EQ(x[1], 5.0);
}

TEST(SolveLinearSystem, General3x3) {
  const auto x =
      solve_linear_system({{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}, {8, -11, -3});
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
  EXPECT_NEAR(x[2], -1.0, 1e-9);
}

TEST(SolveLinearSystem, SingularThrows) {
  EXPECT_THROW(solve_linear_system({{1, 2}, {2, 4}}, {1, 2}),
               std::runtime_error);
}

TEST(SolveLinearSystem, ShapeErrors) {
  EXPECT_THROW(solve_linear_system({}, {}), std::invalid_argument);
  EXPECT_THROW(solve_linear_system({{1, 2}}, {1}), std::invalid_argument);
  EXPECT_THROW(solve_linear_system({{1, 0}, {0, 1}}, {1}),
               std::invalid_argument);
}

TEST(NormalEquations, MatrixAndRhs) {
  const std::vector<std::vector<double>> rows{{1, 2}, {3, 4}};
  const auto m = normal_matrix(rows, 0.0);
  // A^T A = [[10, 14], [14, 20]]
  EXPECT_DOUBLE_EQ(m[0][0], 10.0);
  EXPECT_DOUBLE_EQ(m[0][1], 14.0);
  EXPECT_DOUBLE_EQ(m[1][0], 14.0);
  EXPECT_DOUBLE_EQ(m[1][1], 20.0);

  const auto ridge = normal_matrix(rows, 0.5);
  EXPECT_DOUBLE_EQ(ridge[0][0], 10.5);
  EXPECT_DOUBLE_EQ(ridge[0][1], 14.0);

  const auto v = normal_rhs(rows, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(v[0], 7.0);
  EXPECT_DOUBLE_EQ(v[1], 10.0);
}

}  // namespace
}  // namespace sturgeon::ml
