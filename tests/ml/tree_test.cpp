#include "ml/tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace sturgeon::ml {
namespace {

TEST(DecisionTreeRegressor, FitsPiecewiseConstantExactly) {
  DataSet d;
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i) / 10.0;
    d.add({x}, x < 2.5 ? 1.0 : 7.0);
  }
  TreeParams tp;
  tp.min_samples_leaf = 1;
  tp.min_samples_split = 2;
  DecisionTreeRegressor dt(tp);
  dt.fit(d);
  EXPECT_DOUBLE_EQ(dt.predict({1.0}), 1.0);
  EXPECT_DOUBLE_EQ(dt.predict({4.0}), 7.0);
}

TEST(DecisionTreeRegressor, LearnsNonlinearSurface) {
  Rng rng(51);
  DataSet train, test;
  for (int i = 0; i < 1500; ++i) {
    const double a = rng.uniform(0, 4);
    const double b = rng.uniform(0, 4);
    const double y = std::floor(a) * 2.0 + (b > 2.0 ? 5.0 : 0.0);
    (i < 1200 ? train : test).add({a, b}, y);
  }
  DecisionTreeRegressor dt;
  dt.fit(train);
  EXPECT_GT(r_squared(test.y, dt.predict_batch(test.x)), 0.95);
}

TEST(DecisionTreeRegressor, RespectsMaxDepth) {
  Rng rng(52);
  DataSet d;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(0, 1);
    d.add({a}, a);
  }
  TreeParams tp;
  tp.max_depth = 2;
  DecisionTreeRegressor dt(tp);
  dt.fit(d);
  EXPECT_LE(dt.tree().depth(), 3);  // root at depth 1 + 2 levels
}

TEST(DecisionTreeRegressor, ConstantTargetIsSingleLeaf) {
  DataSet d;
  for (int i = 0; i < 20; ++i) d.add({static_cast<double>(i)}, 5.0);
  DecisionTreeRegressor dt;
  dt.fit(d);
  EXPECT_EQ(dt.tree().node_count(), 1u);
  EXPECT_DOUBLE_EQ(dt.predict({100.0}), 5.0);
}

TEST(DecisionTreeRegressor, Errors) {
  DecisionTreeRegressor dt;
  EXPECT_THROW(dt.predict({1.0}), std::logic_error);
  EXPECT_THROW(dt.fit(DataSet{}), std::invalid_argument);
}

TEST(DecisionTreeClassifier, XorIsLearnable) {
  // XOR needs depth >= 2 and defeats linear models.
  std::vector<FeatureRow> x;
  std::vector<int> y;
  Rng rng(53);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(0, 1);
    const double b = rng.uniform(0, 1);
    x.push_back({a, b});
    y.push_back((a > 0.5) != (b > 0.5) ? 1 : 0);
  }
  DecisionTreeClassifier dt;
  dt.fit(x, y);
  EXPECT_GE(accuracy(y, dt.predict_batch(x)), 0.99);
  EXPECT_EQ(dt.predict({0.9, 0.1}), 1);
  EXPECT_EQ(dt.predict({0.9, 0.9}), 0);
}

TEST(DecisionTreeClassifier, MultiClass) {
  std::vector<FeatureRow> x;
  std::vector<int> y;
  for (int i = 0; i < 90; ++i) {
    const double a = static_cast<double>(i % 3) + 0.1;
    x.push_back({a});
    y.push_back(i % 3);
  }
  DecisionTreeClassifier dt;
  dt.fit(x, y);
  EXPECT_EQ(dt.predict({0.1}), 0);
  EXPECT_EQ(dt.predict({1.1}), 1);
  EXPECT_EQ(dt.predict({2.1}), 2);
}

TEST(DecisionTreeClassifier, MinSamplesLeafLimitsFragmentation) {
  std::vector<FeatureRow> x;
  std::vector<int> y;
  Rng rng(54);
  for (int i = 0; i < 100; ++i) {
    x.push_back({rng.uniform(0, 1)});
    y.push_back(rng.bernoulli(0.5) ? 1 : 0);  // pure noise
  }
  TreeParams tp;
  tp.min_samples_leaf = 20;
  DecisionTreeClassifier dt(tp);
  dt.fit(x, y);
  // With 20-sample leaves over 100 noisy points the tree must stay small.
  EXPECT_LE(dt.tree().node_count(), 11u);
}

TEST(DecisionTreeClassifier, Errors) {
  DecisionTreeClassifier dt;
  EXPECT_THROW(dt.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(dt.fit({{1.0}}, {0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::ml
