#include "ml/logistic.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace sturgeon::ml {
namespace {

void separable_data(std::size_t n, std::uint64_t seed,
                    std::vector<FeatureRow>& x, std::vector<int>& y) {
  // Label 1 iff x0 + x1 > 4 (with margin gap).
  Rng rng(seed);
  x.clear();
  y.clear();
  while (x.size() < n) {
    const double a = rng.uniform(0, 5);
    const double b = rng.uniform(0, 5);
    const double s = a + b;
    if (std::abs(s - 4.0) < 0.3) continue;  // margin
    x.push_back({a, b});
    y.push_back(s > 4.0 ? 1 : 0);
  }
}

TEST(LogisticRegression, SeparatesLinearlySeparableData) {
  std::vector<FeatureRow> x;
  std::vector<int> y;
  separable_data(300, 31, x, y);
  LogisticRegression lr;
  lr.fit(x, y);
  EXPECT_GE(accuracy(y, lr.predict_batch(x)), 0.98);
}

TEST(LogisticRegression, ProbabilitiesOrdered) {
  std::vector<FeatureRow> x;
  std::vector<int> y;
  separable_data(300, 33, x, y);
  LogisticRegression lr;
  lr.fit(x, y);
  EXPECT_LT(lr.predict_proba({0.0, 0.0}), 0.2);
  EXPECT_GT(lr.predict_proba({5.0, 5.0}), 0.8);
}

TEST(LogisticRegression, GeneralizesToFreshSamples) {
  std::vector<FeatureRow> xtr, xte;
  std::vector<int> ytr, yte;
  separable_data(400, 35, xtr, ytr);
  separable_data(150, 36, xte, yte);
  LogisticRegression lr;
  lr.fit(xtr, ytr);
  EXPECT_GE(accuracy(yte, lr.predict_batch(xte)), 0.96);
}

TEST(LogisticRegression, RejectsBadInput) {
  LogisticRegression lr;
  EXPECT_THROW(lr.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(lr.fit({{1.0}}, {2}), std::invalid_argument);  // label not 0/1
  EXPECT_THROW(lr.fit({{1.0}}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(lr.predict({1.0}), std::logic_error);
  EXPECT_THROW(LogisticRegression(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::ml
