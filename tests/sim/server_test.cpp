#include "sim/server.h"

#include <gtest/gtest.h>

namespace sturgeon::sim {
namespace {

ServerConfig quiet() {
  ServerConfig cfg;
  cfg.interference.enabled = false;
  cfg.power_noise = 0.0;
  return cfg;
}

SimulatedServer make_server(const char* ls = "memcached",
                            const char* be = "rt", std::uint64_t seed = 1) {
  return SimulatedServer(find_ls(ls), find_be(be), seed, quiet());
}

TEST(Server, InitialPartitionIsAllToLs) {
  auto server = make_server();
  EXPECT_EQ(server.partition().ls.cores, 20);
  EXPECT_EQ(server.partition().be.cores, 0);
}

TEST(Server, StepProducesCoherentTelemetry) {
  auto server = make_server();
  Partition p;
  p.ls = {4, 4, 6};
  p.be = Allocation::complement(server.machine(), p.ls, 8);
  server.set_partition(p);
  const auto t = server.step(0.2);
  EXPECT_GT(t.ls.completed, 0u);
  EXPECT_GT(t.ls.p95_ms, 0.0);
  EXPECT_GT(t.power_w, server.power_model().idle_power_w());
  EXPECT_GT(t.be_throughput_norm, 0.0);
  EXPECT_LT(t.be_throughput_norm, 1.0);
  EXPECT_GT(t.be_ipc, 0.0);
  EXPECT_DOUBLE_EQ(t.qos_target_ms, 10.0);
  EXPECT_NEAR(t.qps_real, 0.2 * 60000, 1e-9);
}

TEST(Server, BeThroughputMonotoneInCores) {
  auto server = make_server();
  double prev = 0.0;
  for (int be_cores : {2, 6, 10, 14}) {
    AppSlice ls{20 - be_cores, 4, 6};
    Partition p{ls, Allocation::complement(server.machine(), ls, 8)};
    const double thr = server.be_raw_throughput(p.be);
    EXPECT_GT(thr, prev);
    prev = thr;
  }
}

TEST(Server, BeThroughputMonotoneInFrequency) {
  auto server = make_server();
  AppSlice be{10, 0, 10};
  double prev = 0.0;
  for (int f = 0; f <= server.machine().max_freq_level(); ++f) {
    be.freq_level = f;
    const double thr = server.be_raw_throughput(be);
    EXPECT_GT(thr, prev);
    prev = thr;
  }
}

TEST(Server, SoloThroughputIsUpperBound) {
  auto server = make_server("memcached", "bs");
  const double solo = server.be_solo_throughput();
  for (int cores : {4, 10, 16, 19}) {
    AppSlice be{cores, server.machine().max_freq_level(), 10};
    EXPECT_LE(server.be_raw_throughput(be), solo + 1e-9);
  }
}

TEST(Server, LsDemandRisesWhenSqueezed) {
  auto server = make_server();
  const AppSlice rich{8, 10, 12};
  const AppSlice poor_cache{8, 10, 2};
  const AppSlice poor_freq{8, 0, 12};
  const double base = server.ls_mean_demand_ms(rich, 0.0, 1.0);
  EXPECT_GT(server.ls_mean_demand_ms(poor_cache, 0.0, 1.0), base);
  EXPECT_GT(server.ls_mean_demand_ms(poor_freq, 0.0, 1.0), base);
  EXPECT_GT(server.ls_mean_demand_ms(rich, 0.5, 1.0), base);  // bw pressure
  EXPECT_GT(server.ls_mean_demand_ms(rich, 0.0, 1.3), base);  // interference
}

TEST(Server, HigherLoadMoreLatency) {
  auto server = make_server();
  Partition p;
  p.ls = {6, 6, 8};
  p.be = Allocation::complement(server.machine(), p.ls, 5);
  server.set_partition(p);
  double p95_low = 0.0, p95_high = 0.0;
  for (int i = 0; i < 3; ++i) p95_low += server.step(0.2).ls.p95_ms;
  server.reset();
  server.set_partition(p);
  for (int i = 0; i < 3; ++i) p95_high += server.step(0.55).ls.p95_ms;
  EXPECT_GT(p95_high, p95_low);
}

TEST(Server, PowerBudgetIsLsAtPeak) {
  auto server = make_server();
  const double budget = server.power_budget_w();
  EXPECT_GT(budget, 50.0);
  EXPECT_LT(budget, 200.0);
  // Running the LS service alone at peak should land close to the budget.
  server.set_partition(Partition::all_to_ls(server.machine()));
  double peak = 0.0;
  for (int i = 0; i < 3; ++i) peak = std::max(peak, server.step(1.0).power_w);
  EXPECT_NEAR(peak / budget, 1.0, 0.05);
}

TEST(Server, PowerObliviousColocationOverloads) {
  // The Fig 2 mechanism: QoS-min LS slice + BE at top frequency exceeds
  // the budget for every BE application.
  for (const auto& be : be_catalog()) {
    SimulatedServer server(find_ls("memcached"), be, 3, quiet());
    AppSlice ls{4, server.machine().level_for(1.6), 6};
    Partition p{ls, Allocation::complement(server.machine(), ls,
                                     server.machine().max_freq_level())};
    server.set_partition(p);
    double peak = 0.0;
    for (int i = 0; i < 3; ++i) {
      peak = std::max(peak, server.step(0.2).power_w);
    }
    EXPECT_GT(peak / server.power_budget_w(), 1.0) << be.name;
    EXPECT_LT(peak / server.power_budget_w(), 1.20) << be.name;
  }
}

TEST(Server, BandwidthContentionThrottlesBothSides) {
  // fd is the bandwidth hog: squeezing the LS cache while fd runs wide
  // open must show bandwidth pressure in the telemetry.
  SimulatedServer server(find_ls("memcached"), find_be("fd"), 4, quiet());
  AppSlice ls{6, 10, 2};
  Partition p{ls, Allocation::complement(server.machine(), ls, 8)};
  server.set_partition(p);
  const auto t = server.step(0.5);
  EXPECT_GT(t.bw_gbps, server.machine().mem_bw_gbps * 0.8);
  EXPECT_LT(t.be_throughput_norm, 1.0);
}

TEST(Server, InvalidPartitionsRejected) {
  auto server = make_server();
  Partition p;
  p.ls = {12, 4, 10};
  p.be = {12, 4, 10};  // 24 cores on a 20-core machine
  EXPECT_THROW(server.set_partition(p), std::invalid_argument);
  p.ls = {0, 4, 10};
  p.be = {0, 0, 0};
  EXPECT_THROW(server.set_partition(p), std::invalid_argument);
  EXPECT_THROW(server.step(1.5), std::invalid_argument);
  EXPECT_THROW(server.step(-0.1), std::invalid_argument);
}

TEST(Server, DeterministicPerSeed) {
  auto a = make_server("xapian", "fe", 77);
  auto b = make_server("xapian", "fe", 77);
  Partition p;
  p.ls = {5, 6, 5};
  p.be = Allocation::complement(a.machine(), p.ls, 7);
  a.set_partition(p);
  b.set_partition(p);
  for (int i = 0; i < 3; ++i) {
    const auto ta = a.step(0.4);
    const auto tb = b.step(0.4);
    EXPECT_DOUBLE_EQ(ta.ls.p95_ms, tb.ls.p95_ms);
    EXPECT_DOUBLE_EQ(ta.power_w, tb.power_w);
  }
}

}  // namespace
}  // namespace sturgeon::sim
