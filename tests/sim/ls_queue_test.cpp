#include "sim/ls_queue.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sturgeon::sim {
namespace {

TEST(LsQueue, LowUtilizationLatencyNearServiceTime) {
  LsQueueSim q(1);
  // 4 servers, 100 QPS, 1 ms mean service: utilization ~2.5%.
  IntervalStats total;
  for (int i = 0; i < 5; ++i) {
    const auto s = q.step(1000.0, 4, 100.0, 1.0, 0.5, 50.0);
    total.completed += s.completed;
    total.qos_violations += s.qos_violations;
  }
  EXPECT_GT(total.completed, 300u);
  EXPECT_EQ(total.qos_violations, 0u);
}

TEST(LsQueue, UtilizationMatchesLoad) {
  LsQueueSim q(2);
  // lambda * S / k = 2000/1000 * 2 / 8 = 0.5
  double util = 0.0;
  int n = 0;
  for (int i = 0; i < 10; ++i) {
    util += q.step(1000.0, 8, 2000.0, 2.0, 0.8, 100.0).utilization;
    ++n;
  }
  EXPECT_NEAR(util / n, 0.5, 0.05);
}

TEST(LsQueue, TailGrowsWithUtilization) {
  double p95_low, p95_high;
  {
    LsQueueSim q(3);
    q.step(1000.0, 4, 500.0, 2.0, 0.8, 1000.0);  // warm-up
    p95_low = q.step(1000.0, 4, 500.0, 2.0, 0.8, 1000.0).p95_ms;  // util .25
  }
  {
    LsQueueSim q(3);
    q.step(1000.0, 4, 1800.0, 2.0, 0.8, 1000.0);
    p95_high = q.step(1000.0, 4, 1800.0, 2.0, 0.8, 1000.0).p95_ms;  // util .9
  }
  EXPECT_GT(p95_high, p95_low * 1.3);
}

TEST(LsQueue, OverloadBacklogGrowsAndCarriesOver) {
  LsQueueSim q(4);
  // util = 1.5: queue must grow across intervals.
  const auto s1 = q.step(1000.0, 2, 1500.0, 2.0, 0.8, 10.0);
  const auto s2 = q.step(1000.0, 2, 1500.0, 2.0, 0.8, 10.0);
  EXPECT_GT(s2.backlog, s1.backlog);
  EXPECT_GT(s2.p95_ms, s1.p95_ms);

  // Recovery: plenty of servers drain the backlog.
  std::uint64_t backlog = s2.backlog;
  for (int i = 0; i < 3; ++i) {
    backlog = q.step(1000.0, 16, 100.0, 1.0, 0.5, 10.0).backlog;
  }
  EXPECT_LT(backlog, 5u);
}

TEST(LsQueue, FasterServiceAppliesToBacklog) {
  // Queue up work at a slow service rate, then finish it at a fast rate:
  // the drain must use the new rate (dispatch-time demand draw).
  LsQueueSim q(5);
  q.step(1000.0, 1, 900.0, 2.0, 0.1, 1e6);  // util 1.8 -> backlog builds
  const auto backlog = q.backlog();
  ASSERT_GT(backlog, 100u);
  const auto drained = q.step(1000.0, 8, 0.0, 0.2, 0.1, 1e6);
  EXPECT_GT(drained.completed, backlog - 10);
}

TEST(LsQueue, ViolationsCountedAgainstTarget) {
  LsQueueSim q(6);
  // Mean service 5 ms, target 1 ms: nearly everything violates.
  const auto s = q.step(1000.0, 8, 500.0, 5.0, 0.5, 1.0);
  EXPECT_GT(s.completed, 0u);
  EXPECT_GT(static_cast<double>(s.qos_violations) /
                static_cast<double>(s.completed),
            0.9);
}

TEST(LsQueue, ZeroRateProducesNothing) {
  LsQueueSim q(7);
  const auto s = q.step(1000.0, 4, 0.0, 1.0, 0.5, 10.0);
  EXPECT_EQ(s.arrivals, 0u);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_DOUBLE_EQ(s.utilization, 0.0);
}

TEST(LsQueue, ZeroServersQueuesEverything) {
  LsQueueSim q(8);
  const auto s = q.step(1000.0, 0, 300.0, 1.0, 0.5, 10.0);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.backlog, s.arrivals);
  // The oldest waiting request's age is surfaced as the latency signal.
  const auto s2 = q.step(1000.0, 0, 300.0, 1.0, 0.5, 10.0);
  EXPECT_GT(s2.p95_ms, 900.0);
}

TEST(LsQueue, DeterministicPerSeed) {
  LsQueueSim a(9), b(9);
  for (int i = 0; i < 3; ++i) {
    const auto sa = a.step(1000.0, 4, 800.0, 1.5, 0.9, 10.0);
    const auto sb = b.step(1000.0, 4, 800.0, 1.5, 0.9, 10.0);
    EXPECT_EQ(sa.completed, sb.completed);
    EXPECT_DOUBLE_EQ(sa.p95_ms, sb.p95_ms);
  }
}

TEST(LsQueue, ResetClearsState) {
  LsQueueSim q(10);
  q.step(1000.0, 1, 2000.0, 2.0, 0.5, 10.0);
  EXPECT_GT(q.backlog(), 0u);
  q.reset();
  EXPECT_EQ(q.backlog(), 0u);
}

TEST(LsQueue, RejectsBadArguments) {
  LsQueueSim q(11);
  EXPECT_THROW(q.step(0.0, 4, 100.0, 1.0, 0.5, 10.0), std::invalid_argument);
  EXPECT_THROW(q.step(1000.0, 4, -1.0, 1.0, 0.5, 10.0),
               std::invalid_argument);
  EXPECT_THROW(q.step(1000.0, 4, 100.0, 0.0, 0.5, 10.0),
               std::invalid_argument);
  EXPECT_THROW(q.step(1000.0, 4, 100.0, 1.0, 0.5, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::sim
