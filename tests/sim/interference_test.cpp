#include "sim/interference.h"

#include <gtest/gtest.h>

namespace sturgeon::sim {
namespace {

TEST(Interference, DisabledIsAlwaysOne) {
  InterferenceConfig cfg;
  cfg.enabled = false;
  InterferenceProcess p(cfg, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(p.step(), 1.0);
  }
}

TEST(Interference, EpisodesOccurAtConfiguredRate) {
  InterferenceConfig cfg;
  cfg.episode_rate_per_s = 0.05;
  InterferenceProcess p(cfg, 2);
  int active_seconds = 0;
  const int total = 20000;
  for (int i = 0; i < total; ++i) {
    if (p.step() > 1.0) ++active_seconds;
  }
  // Expected active fraction ~ rate * mean duration (0.05 * ~3.5) but
  // bounded below by > 0 and well under half the time.
  EXPECT_GT(active_seconds, total / 50);
  EXPECT_LT(active_seconds, total / 2);
}

TEST(Interference, FactorsWithinConfiguredRange) {
  InterferenceConfig cfg;
  cfg.episode_rate_per_s = 0.2;
  InterferenceProcess p(cfg, 3);
  for (int i = 0; i < 5000; ++i) {
    const double f = p.step();
    if (f > 1.0) {
      EXPECT_GE(f, cfg.min_factor);
      EXPECT_LE(f, cfg.max_factor);
    }
  }
}

TEST(Interference, EpisodesPersistForTheirDuration) {
  InterferenceConfig cfg;
  cfg.episode_rate_per_s = 1.0;  // immediate onset
  cfg.min_duration_s = 4.0;
  cfg.max_duration_s = 4.0;
  InterferenceProcess p(cfg, 4);
  const double f0 = p.step();
  ASSERT_GT(f0, 1.0);
  // Same factor for the remaining seconds of the episode.
  for (int i = 1; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(p.step(), f0) << "second " << i;
  }
}

TEST(Interference, DeterministicPerSeed) {
  InterferenceConfig cfg;
  cfg.episode_rate_per_s = 0.1;
  InterferenceProcess a(cfg, 5), b(cfg, 5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_DOUBLE_EQ(a.step(), b.step());
  }
}

TEST(Interference, RejectsBadConfig) {
  InterferenceConfig bad;
  bad.min_factor = 0.9;
  EXPECT_THROW(InterferenceProcess(bad, 1), std::invalid_argument);
  InterferenceConfig bad2;
  bad2.max_duration_s = bad2.min_duration_s - 1.0;
  EXPECT_THROW(InterferenceProcess(bad2, 1), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::sim
