#include "sim/power_model.h"

#include <gtest/gtest.h>

namespace sturgeon::sim {
namespace {

const MachineSpec m = MachineSpec::xeon_e5_2630_v4();

TEST(PowerModel, IdleEqualsUncore) {
  PowerModel pm(m);
  EXPECT_DOUBLE_EQ(pm.idle_power_w(), pm.coefficients().uncore_w);
  AppSlice none{0, 0, 0};
  EXPECT_DOUBLE_EQ(
      pm.package_power_w(none, 0, 1.0, none, 0, 1.0, 0.0),
      pm.coefficients().uncore_w);
}

TEST(PowerModel, MonotoneInFrequency) {
  PowerModel pm(m);
  double prev = 0.0;
  for (int f = 0; f <= m.max_freq_level(); ++f) {
    const double p = pm.slice_power_w(8, f, 1.0, 1.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PowerModel, SuperlinearInFrequency) {
  PowerModel pm(m);
  // Dynamic part at 2.2 GHz should exceed (2.2/1.2)x the 1.2 GHz dynamic
  // part (alpha > 1): compare increments above the static floor.
  const double static_part = pm.slice_power_w(8, 0, 0.0, 0.0);
  const double lo = pm.slice_power_w(8, 0, 1.0, 1.0) - static_part;
  const double hi = pm.slice_power_w(8, m.max_freq_level(), 1.0, 1.0) -
                    static_part;
  EXPECT_GT(hi / lo, 2.2 / 1.2);
}

TEST(PowerModel, MonotoneInCoresAndUtil) {
  PowerModel pm(m);
  EXPECT_LT(pm.slice_power_w(4, 5, 0.5, 1.0), pm.slice_power_w(8, 5, 0.5, 1.0));
  EXPECT_LT(pm.slice_power_w(8, 5, 0.2, 1.0), pm.slice_power_w(8, 5, 0.9, 1.0));
}

TEST(PowerModel, UtilizationFloorMakesIdleCoresExpensive) {
  PowerModel pm(m);
  const double at_zero = pm.slice_power_w(8, 5, 0.0, 1.0);
  const double at_full = pm.slice_power_w(8, 5, 1.0, 1.0);
  // Energy non-proportionality: zero-util active cores draw more than
  // half of the full-util power.
  EXPECT_GT(at_zero, 0.5 * at_full);
  EXPECT_LT(at_zero, at_full);
}

TEST(PowerModel, ActivityFactorScalesDynamicPower) {
  PowerModel pm(m);
  const double ls = pm.slice_power_w(10, 8, 1.0, 1.0);
  const double be = pm.slice_power_w(10, 8, 1.0, 1.15);
  EXPECT_GT(be, ls);  // the root cause of the paper's Fig 2 overload
}

TEST(PowerModel, PackageSumsSlicesAndBandwidth) {
  PowerModel pm(m);
  AppSlice ls{4, 4, 6};
  AppSlice be{16, 10, 14};
  const double base =
      pm.package_power_w(ls, 0.6, 1.0, be, 1.0, 1.1, 0.0);
  const double with_bw =
      pm.package_power_w(ls, 0.6, 1.0, be, 1.0, 1.1, 20.0);
  EXPECT_NEAR(with_bw - base, 20.0 * pm.coefficients().k_bw_w_per_gbps,
              1e-9);
  EXPECT_GT(base, pm.idle_power_w());
}

TEST(PowerModel, UtilClamped) {
  PowerModel pm(m);
  EXPECT_DOUBLE_EQ(pm.slice_power_w(4, 4, 1.5, 1.0),
                   pm.slice_power_w(4, 4, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(pm.slice_power_w(4, 4, -0.5, 1.0),
                   pm.slice_power_w(4, 4, 0.0, 1.0));
}

TEST(PowerModel, RejectsBadInputs) {
  PowerModel pm(m);
  EXPECT_THROW(pm.slice_power_w(-1, 0, 0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(pm.slice_power_w(m.num_cores + 1, 0, 0.5, 1.0),
               std::invalid_argument);
  PowerCoefficients bad;
  bad.alpha = -1.0;
  EXPECT_THROW(PowerModel(m, bad), std::invalid_argument);
  PowerCoefficients bad2;
  bad2.util_floor = 1.5;
  EXPECT_THROW(PowerModel(m, bad2), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::sim
