// Calibration anchors from the paper's measurements (Section III-B),
// asserted against the DES so profile drift is caught:
//   - at 20% load, ~4 cores at 1.6-1.8 GHz with ~6 ways hold each LS
//     service's p95 target, and meaningfully fewer cores do not;
//   - at peak load the full machine at 2.2 GHz meets QoS;
//   - the power budget (LS at peak) is exceeded by single-digit to
//     low-teens percent when a BE app takes the remainder at full speed.
#include <gtest/gtest.h>

#include "sim/server.h"

namespace sturgeon::sim {
namespace {

ServerConfig quiet() {
  ServerConfig cfg;
  cfg.interference.enabled = false;
  cfg.power_noise = 0.0;
  return cfg;
}

/// Mean interval p95: the anchor claim is about typical behaviour, and a
/// single interval's p95 estimate is noisy at low arrival counts.
double mean_p95(SimulatedServer& server, double load, int intervals = 6) {
  double p95 = 0.0;
  for (int i = 0; i < intervals; ++i) {
    p95 += server.step(load).ls.p95_ms;
  }
  return p95 / intervals;
}

class CalibrationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CalibrationTest, JustEnoughAllocationAtTwentyPercent) {
  const auto& ls = find_ls(GetParam());
  const auto machine = MachineSpec::xeon_e5_2630_v4();
  const double freq = ls.name == "memcached" ? 1.6 : 1.8;
  const int ways = ls.name == "memcached" ? 6 : 5;

  // The paper's allocation holds the target...
  {
    SimulatedServer server(ls, be_catalog().front(), 11, quiet());
    Partition p;
    p.ls = {4, machine.level_for(freq), ways};
    p.be = AppSlice{0, 0, 0};
    server.set_partition(p);
    EXPECT_LE(mean_p95(server, 0.2), ls.qos_target_ms) << ls.name;
  }
  // ...and two fewer cores at that frequency do not.
  {
    SimulatedServer server(ls, be_catalog().front(), 11, quiet());
    Partition p;
    p.ls = {2, machine.level_for(freq), ways};
    p.be = AppSlice{0, 0, 0};
    server.set_partition(p);
    EXPECT_GT(mean_p95(server, 0.2), ls.qos_target_ms) << ls.name;
  }
}

TEST_P(CalibrationTest, PeakLoadFeasibleOnWholeMachine) {
  const auto& ls = find_ls(GetParam());
  SimulatedServer server(ls, be_catalog().front(), 12, quiet());
  EXPECT_LT(mean_p95(server, 1.0), ls.qos_target_ms) << ls.name;
}

TEST_P(CalibrationTest, PeakUtilizationIsModerate) {
  // The budget assumes LS-at-peak; QoS must be met with headroom, not at
  // the saturation cliff (paper keeps QoS at peak).
  const auto& ls = find_ls(GetParam());
  SimulatedServer server(ls, be_catalog().front(), 13, quiet());
  double util = 0.0;
  for (int i = 0; i < 4; ++i) util += server.step(1.0).ls.utilization;
  util /= 4;
  EXPECT_GT(util, 0.3) << ls.name;
  EXPECT_LT(util, 0.8) << ls.name;
}

INSTANTIATE_TEST_SUITE_P(AllLsServices, CalibrationTest,
                         ::testing::Values("memcached", "xapian", "img-dnn"));

TEST(CalibrationPower, OverloadBandMatchesPaper) {
  // Aggregate Fig 2 anchor: across all 18 pairs, power-oblivious
  // co-location exceeds the budget by ~0-15%.
  double lo = 1e9, hi = 0.0;
  for (const auto& ls : ls_catalog()) {
    const auto machine = MachineSpec::xeon_e5_2630_v4();
    const double freq = ls.name == "memcached" ? 1.6 : 1.8;
    for (const auto& be : be_catalog()) {
      SimulatedServer server(ls, be, 14, quiet());
      AppSlice slice{4, machine.level_for(freq), 6};
      Partition p{slice,
                  Allocation::complement(machine, slice, machine.max_freq_level())};
      server.set_partition(p);
      double peak = 0.0;
      for (int i = 0; i < 3; ++i) {
        peak = std::max(peak, server.step(0.2).power_w);
      }
      const double ratio = peak / server.power_budget_w();
      lo = std::min(lo, ratio);
      hi = std::max(hi, ratio);
    }
  }
  EXPECT_GT(lo, 1.0);
  EXPECT_LT(hi, 1.16);
}

TEST(CalibrationPreference, CoreVsFrequencyFlipExists) {
  // Fig 3 anchor: between 20% and 35% memcached load, at least one BE app
  // flips its preferred feasible configuration.
  const auto machine = MachineSpec::xeon_e5_2630_v4();
  const auto& ls = find_ls("memcached");
  int flips = 0;
  for (const auto& be : be_catalog()) {
    bool core_rich_better[2];
    int idx = 0;
    for (double load : {0.2, 0.35}) {
      // Core-rich vs freq-rich, both QoS-feasible by construction.
      AppSlice narrow{load < 0.3 ? 4 : 6, machine.level_for(2.0), 6};
      AppSlice wide{load < 0.3 ? 8 : 12, machine.level_for(1.4), 10};
      Partition a{narrow, Allocation::complement(machine, narrow,
                                           machine.level_for(1.8))};
      Partition b{wide, Allocation::complement(machine, wide,
                                         machine.max_freq_level())};
      SimulatedServer sa(ls, be, 15, quiet());
      sa.set_partition(a);
      SimulatedServer sb(ls, be, 15, quiet());
      sb.set_partition(b);
      double thr_a = 0.0, thr_b = 0.0;
      for (int i = 0; i < 3; ++i) {
        thr_a += sa.step(load).be_throughput_norm;
        thr_b += sb.step(load).be_throughput_norm;
      }
      core_rich_better[idx++] = thr_a > thr_b;
    }
    if (core_rich_better[0] != core_rich_better[1]) ++flips;
  }
  EXPECT_GE(flips, 1);
}

}  // namespace
}  // namespace sturgeon::sim
