#include "sim/cache_model.h"

#include <gtest/gtest.h>

namespace sturgeon::sim {
namespace {

const MachineSpec m = MachineSpec::xeon_e5_2630_v4();

TEST(CacheModel, WaysToMb) {
  EXPECT_DOUBLE_EQ(ways_to_mb(m, 0), 0.0);
  EXPECT_DOUBLE_EQ(ways_to_mb(m, 20), 25.0);
  EXPECT_DOUBLE_EQ(ways_to_mb(m, 4), 5.0);
  EXPECT_THROW(ways_to_mb(m, -1), std::invalid_argument);
  EXPECT_THROW(ways_to_mb(m, 21), std::invalid_argument);
}

TEST(CacheModel, MissRatioMonotoneDecreasingInWays) {
  double prev = 1.1;
  for (int w = 1; w <= m.llc_ways; ++w) {
    const double miss = miss_ratio(m, w, 8.0);
    EXPECT_LT(miss, prev) << "ways=" << w;
    EXPECT_GT(miss, 0.0);
    EXPECT_LT(miss, 1.0);
    prev = miss;
  }
}

TEST(CacheModel, MissRatioIncreasesWithWorkingSet) {
  EXPECT_LT(miss_ratio(m, 10, 2.0), miss_ratio(m, 10, 8.0));
  EXPECT_LT(miss_ratio(m, 10, 8.0), miss_ratio(m, 10, 32.0));
}

TEST(CacheModel, ZeroWorkingSetNeverMisses) {
  EXPECT_DOUBLE_EQ(miss_ratio(m, 1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(miss_ratio(m, 1, -1.0), 0.0);
}

TEST(CacheModel, SquaredKnee) {
  // miss = (w/(w+a))^2: with wss == alloc, miss should be 0.25.
  const double alloc = ways_to_mb(m, 8);  // 10 MB
  EXPECT_NEAR(miss_ratio(m, 8, alloc), 0.25, 1e-12);
}

TEST(CacheModel, InflationBounds) {
  // sensitivity 0 -> no inflation; grows with sensitivity.
  EXPECT_DOUBLE_EQ(cache_inflation(m, 5, 8.0, 0.0), 1.0);
  const double low = cache_inflation(m, 5, 8.0, 0.3);
  const double high = cache_inflation(m, 5, 8.0, 0.9);
  EXPECT_GT(low, 1.0);
  EXPECT_GT(high, low);
  EXPECT_THROW(cache_inflation(m, 5, 8.0, -0.1), std::invalid_argument);
}

TEST(CacheModel, InflationMonotoneInWays) {
  double prev = 1e9;
  for (int w = 1; w <= m.llc_ways; ++w) {
    const double f = cache_inflation(m, w, 12.0, 0.5);
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(CacheModel, BwFractionNormalizedAtOneWay) {
  EXPECT_NEAR(bw_fraction(m, 1, 8.0), 1.0, 1e-12);
  EXPECT_LT(bw_fraction(m, 20, 8.0), bw_fraction(m, 2, 8.0));
  EXPECT_DOUBLE_EQ(bw_fraction(m, 5, 0.0), 0.0);
}

}  // namespace
}  // namespace sturgeon::sim
