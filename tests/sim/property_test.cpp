// Property-style sweeps over every LS x BE pair and random partitions:
// the telemetry invariants every downstream component relies on must
// hold for arbitrary valid inputs, not just the calibrated anchors.
#include <gtest/gtest.h>

#include "sim/server.h"
#include "util/rng.h"

namespace sturgeon::sim {
namespace {

struct PairParam {
  const char* ls;
  const char* be;
};

std::string param_name(const ::testing::TestParamInfo<PairParam>& info) {
  std::string n = std::string(info.param.ls) + "_" + info.param.be;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

class PairPropertyTest : public ::testing::TestWithParam<PairParam> {
 protected:
  static ServerConfig quiet() {
    ServerConfig cfg;
    cfg.interference.enabled = false;
    return cfg;
  }
};

TEST_P(PairPropertyTest, TelemetryInvariantsUnderRandomConfigurations) {
  const auto& ls = find_ls(GetParam().ls);
  const auto& be = find_be(GetParam().be);
  Rng rng(0xABCD ^ std::hash<std::string>{}(ls.name + be.name));
  const MachineSpec m = MachineSpec::xeon_e5_2630_v4();

  for (int trial = 0; trial < 12; ++trial) {
    SimulatedServer server(ls, be, rng.next_u64(), quiet());
    Partition p;
    p.ls.cores = rng.uniform_int(1, m.num_cores - 1);
    p.ls.freq_level = rng.uniform_int(0, m.max_freq_level());
    p.ls.llc_ways = rng.uniform_int(1, m.llc_ways - 1);
    p.be.cores = rng.uniform_int(1, m.num_cores - p.ls.cores);
    p.be.freq_level = rng.uniform_int(0, m.max_freq_level());
    p.be.llc_ways = rng.uniform_int(1, m.llc_ways - p.ls.llc_ways);
    server.set_partition(p);
    const double load = rng.uniform(0.05, 0.95);
    for (int i = 0; i < 2; ++i) {
      const auto t = server.step(load);
      // Power between idle and a sane ceiling.
      EXPECT_GT(t.power_w, server.power_model().idle_power_w() * 0.9);
      EXPECT_LT(t.power_w, 250.0);
      // Throughput normalized to solo is in (0, ~1].
      EXPECT_GT(t.be_throughput_norm, 0.0);
      EXPECT_LE(t.be_throughput_norm, 1.0 + 1e-9);
      // Latency stats coherent.
      EXPECT_GE(t.ls.p99_ms, t.ls.p95_ms - 1e-9);
      EXPECT_GE(t.ls.p95_ms, 0.0);
      EXPECT_LE(t.ls.qos_violations, t.ls.completed + t.ls.arrivals);
      EXPECT_GE(t.ls.utilization, 0.0);
      EXPECT_LE(t.ls.utilization, 1.0);
      // Bandwidth non-negative and bounded by physically plausible sums.
      EXPECT_GE(t.bw_gbps, 0.0);
      EXPECT_LT(t.bw_gbps, 120.0);
      // Interference disabled -> factor exactly 1.
      EXPECT_DOUBLE_EQ(t.interference_factor, 1.0);
    }
  }
}

TEST_P(PairPropertyTest, MoreLsResourcesNeverHurtLatency) {
  const auto& ls = find_ls(GetParam().ls);
  const auto& be = find_be(GetParam().be);
  const MachineSpec m = MachineSpec::xeon_e5_2630_v4();
  const double load = 0.4;

  const auto mean_p95 = [&](const Partition& p) {
    SimulatedServer server(ls, be, 1234, quiet());
    server.set_partition(p);
    double acc = 0.0;
    for (int i = 0; i < 5; ++i) acc += server.step(load).ls.p95_ms;
    return acc / 5;
  };

  Partition small;
  small.ls = {5, m.level_for(1.6), 5};
  small.be = Allocation::complement(m, small.ls, 5);
  Partition big;
  big.ls = {10, m.max_freq_level(), 10};
  big.be = Allocation::complement(m, big.ls, 5);
  // Allow a generous noise margin; the relation must hold clearly.
  EXPECT_LT(mean_p95(big), mean_p95(small) * 1.05);
}

TEST_P(PairPropertyTest, BudgetIndependentOfBePairing) {
  // The budget is defined by the LS service alone; the co-located BE app
  // must not change it.
  const auto& ls = find_ls(GetParam().ls);
  const auto& be = find_be(GetParam().be);
  SimulatedServer a(ls, be, 1, quiet());
  SimulatedServer b(ls, be_catalog().front(), 1, quiet());
  EXPECT_DOUBLE_EQ(a.power_budget_w(), b.power_budget_w());
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, PairPropertyTest,
    ::testing::Values(PairParam{"memcached", "bs"}, PairParam{"memcached", "fa"},
                      PairParam{"memcached", "fe"}, PairParam{"memcached", "rt"},
                      PairParam{"memcached", "sp"}, PairParam{"memcached", "fd"},
                      PairParam{"xapian", "bs"}, PairParam{"xapian", "fa"},
                      PairParam{"xapian", "fe"}, PairParam{"xapian", "rt"},
                      PairParam{"xapian", "sp"}, PairParam{"xapian", "fd"},
                      PairParam{"img-dnn", "bs"}, PairParam{"img-dnn", "fa"},
                      PairParam{"img-dnn", "fe"}, PairParam{"img-dnn", "rt"},
                      PairParam{"img-dnn", "sp"}, PairParam{"img-dnn", "fd"}),
    param_name);

}  // namespace
}  // namespace sturgeon::sim
