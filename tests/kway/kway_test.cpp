// K-way allocation core: WorkloadSet/Allocation contracts, KwaySearch
// (greedy + warm start vs the exhaustive oracle, K = 2 pair delegation),
// the KwayArbiter's unit arbitration, and the bit-compatibility twin
// runs that pin route_via_allocation to the pair path at K = 2.
#include "core/kway_search.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "../core/fake_models.h"
#include "cluster/cluster.h"
#include "core/balancer.h"
#include "core/config_search.h"
#include "core/controller.h"
#include "exp/runner.h"
#include "workloads/app_profile.h"

namespace sturgeon::core {
namespace {

const MachineSpec big = MachineSpec::xeon_e5_2630_v4();

MachineSpec tiny_machine() {
  MachineSpec m;
  m.num_cores = 4;
  m.freq_ghz = {1.0, 1.5, 2.0};
  m.llc_ways = 4;
  m.llc_mb = 4.0;
  m.mem_bw_gbps = 10.0;
  return m;
}

WorkloadSet ls_be_pair() { return WorkloadSet::pair(10.0); }

// ---------------------------------------------------------------- types

TEST(WorkloadSet, ValidateRejectsBadShapes) {
  EXPECT_THROW(WorkloadSet{}.validate(), std::invalid_argument);
  WorkloadSet bad_target{{Workload::latency_sensitive("ls", 0.0)}};
  EXPECT_THROW(bad_target.validate(), std::invalid_argument);
  WorkloadSet bad_prio{{Workload::best_effort("be", -1)}};
  EXPECT_THROW(bad_prio.validate(), std::invalid_argument);
  WorkloadSet ok{{Workload::latency_sensitive("ls", 10.0),
                  Workload::best_effort("be", 2)}};
  EXPECT_NO_THROW(ok.validate());
  EXPECT_TRUE(ok.is_pair());
  EXPECT_EQ(ok.ls_indices(), std::vector<int>{0});
  EXPECT_EQ(ok.be_indices(), std::vector<int>{1});
  EXPECT_EQ(ok[1].weight(), 3.0);  // 1 + priority
  EXPECT_EQ(ok[0].weight(), 0.0);  // LS never enters the objective
}

TEST(Allocation, ValidForCatchesOverAndUndersubscription) {
  const MachineSpec m = tiny_machine();
  Allocation three(std::vector<AppSlice>{
      {2, 0, 2}, {1, 1, 1}, {1, 2, 1}});  // exactly the machine
  EXPECT_TRUE(three.valid_for(m));

  Allocation over_cores = three;
  over_cores[2].cores = 2;  // 5 > 4 cores
  EXPECT_FALSE(over_cores.valid_for(m));

  Allocation over_ways = three;
  over_ways[0].llc_ways = 3;  // 5 > 4 ways
  EXPECT_FALSE(over_ways.valid_for(m));

  Allocation bad_freq = three;
  bad_freq[1].freq_level = 3;  // only levels 0..2 exist
  EXPECT_FALSE(bad_freq.valid_for(m));

  // Undersubscription (spare cores/ways) is fine; a zero-resource slice
  // is not, unless it is wholly empty AND empties are allowed.
  Allocation spare(std::vector<AppSlice>{{1, 0, 1}, {1, 0, 1}});
  EXPECT_TRUE(spare.valid_for(m));
  Allocation hollow = spare;
  hollow[1] = AppSlice{0, 0, 1};  // cores == 0 but holds a way
  EXPECT_FALSE(hollow.valid_for(m));
  EXPECT_FALSE(hollow.valid_for(m, /*allow_empty=*/true));
  hollow[1] = AppSlice{};  // wholly empty
  EXPECT_FALSE(hollow.valid_for(m));
  EXPECT_TRUE(hollow.valid_for(m, /*allow_empty=*/true));
  // ...but never for the first (LS-by-convention) slice.
  Allocation headless(std::vector<AppSlice>{AppSlice{}, {1, 0, 1}});
  EXPECT_FALSE(headless.valid_for(m, /*allow_empty=*/true));
}

TEST(Allocation, PairRoundTripAndComplement) {
  Partition p;
  p.ls = {6, big.max_freq_level(), 8};
  p.be = Allocation::complement(big, p.ls, 2);
  EXPECT_EQ(p.be.cores, big.num_cores - 6);
  EXPECT_EQ(p.be.llc_ways, big.llc_ways - 8);
  EXPECT_EQ(p.be.freq_level, 2);
  const Allocation a = Allocation::of(p);
  ASSERT_EQ(a.size(), 2);
  EXPECT_EQ(a.to_partition(), p);
  Allocation three = Allocation::all_to_first(big, 3);
  EXPECT_THROW(three.to_partition(), std::invalid_argument);
}

// ----------------------------------------------------------- KwaySearch

TEST(KwaySearch, SingleLsWorkloadMeetsItsTarget) {
  const auto pred = testing::fake_predictor(big, 1.0, 3);
  WorkloadSet ws{{Workload::latency_sensitive("ls", 10.0)}};
  KwaySearch search(ws, *pred, 200.0);
  const auto r = search.search({12000.0});
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.best.size(), 1);
  EXPECT_TRUE(pred->ls_qos_ok(12000.0, r.best[0]));
  EXPECT_EQ(r.objective, 0.0);  // no BE slice, nothing to maximize
  EXPECT_LE(r.predicted_power_w, 200.0);
}

TEST(KwaySearch, ThreeWaySatisfiesBothQosTargets) {
  // Two LS services with different demand models plus one BE app, each
  // with its own predictor.
  const auto light = testing::fake_predictor(big, 0.5, 2);
  const auto heavy = testing::fake_predictor(big, 1.5, 4);
  const auto batch = testing::fake_predictor(big, 1.0, 1);
  WorkloadSet ws{{Workload::latency_sensitive("light", 10.0),
                  Workload::latency_sensitive("heavy", 25.0),
                  Workload::best_effort("batch", 1)}};
  KwaySearch search(ws, {light.get(), heavy.get(), batch.get()}, 260.0);
  const auto r = search.search({4000.0, 6000.0, 0.0});
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.best.size(), 3);
  EXPECT_TRUE(light->ls_qos_ok(4000.0, r.best[0]));
  EXPECT_TRUE(heavy->ls_qos_ok(6000.0, r.best[1]));
  EXPECT_GT(r.best[2].cores, 0);
  EXPECT_GT(r.objective, 0.0);
  EXPECT_EQ(r.slice_throughput.size(), 3u);
  EXPECT_EQ(r.slice_throughput[0], 0.0);
  EXPECT_GT(r.slice_throughput[2], 0.0);
  EXPECT_LE(r.predicted_power_w, 260.0 + 1e-9);
  EXPECT_GT(r.model_invocations, 0u);
}

TEST(KwaySearch, WarmStartFromOptimumMatchesExhaustive) {
  // On a 4-core/3-level/4-way machine the full K = 3 grid is small
  // enough to enumerate. Hill-climbing FROM the global optimum must
  // return exactly it (only strict improvements are taken), so search
  // and oracle agree bit-for-bit.
  const MachineSpec m = tiny_machine();
  const auto pred = testing::fake_predictor(m, 1.0, 1);
  WorkloadSet ws{{Workload::latency_sensitive("ls", 10.0),
                  Workload::best_effort("hi", 2),
                  Workload::best_effort("lo", 0)}};
  KwaySearch search(ws, *pred, 60.0);
  const auto oracle = search.exhaustive({1000.0, 0.0, 0.0});
  ASSERT_TRUE(oracle.feasible);
  const auto warm = search.search({1000.0, 0.0, 0.0}, &oracle.best);
  ASSERT_TRUE(warm.feasible);
  EXPECT_EQ(warm.best, oracle.best);
  EXPECT_EQ(warm.objective, oracle.objective);
  EXPECT_EQ(warm.rounds, 0);
  // The cold search cannot beat the oracle, and the greedy + hill-climb
  // combination should land within 10% of it on this tiny grid.
  const auto cold = search.search({1000.0, 0.0, 0.0});
  ASSERT_TRUE(cold.feasible);
  EXPECT_LE(cold.objective, oracle.objective + 1e-12);
  EXPECT_GE(cold.objective, 0.9 * oracle.objective);
}

TEST(KwaySearch, PairDelegationIsBitIdenticalToConfigSearch) {
  const auto pred = testing::fake_predictor(big, 1.0, 3);
  ConfigSearch pair_search(*pred, 150.0);
  KwaySearch kway(ls_be_pair(), *pred, 150.0);
  for (const double qps : {4000.0, 9000.0, 14000.0}) {
    const auto expect = pair_search.search(qps);
    const auto got = kway.search({qps, 0.0});
    EXPECT_EQ(got.feasible, expect.feasible);
    ASSERT_EQ(got.best.size(), 2);
    EXPECT_EQ(got.best.to_partition(), expect.best);
    EXPECT_EQ(got.predicted_power_w, expect.predicted_power_w);
    EXPECT_EQ(got.slice_throughput[1], expect.predicted_throughput);
    EXPECT_EQ(got.rounds, 0);
  }
}

TEST(KwaySearch, InfeasibleFallsBackToAllToFirst) {
  const auto pred = testing::fake_predictor(big, 10.0, 3);
  WorkloadSet ws{{Workload::latency_sensitive("ls", 10.0),
                  Workload::latency_sensitive("ls2", 10.0),
                  Workload::best_effort("be", 0)}};
  KwaySearch search(ws, *pred, 200.0);
  const auto r = search.search({20000.0, 20000.0, 0.0});
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.best, Allocation::all_to_first(big, 3));
  EXPECT_EQ(r.objective, 0.0);
}

TEST(KwaySearch, RejectsBadConstructionAndLoads) {
  const auto pred = testing::fake_predictor(big);
  WorkloadSet ws = ls_be_pair();
  EXPECT_THROW(KwaySearch(ws, {pred.get()}, 100.0), std::invalid_argument);
  EXPECT_THROW(KwaySearch(ws, {pred.get(), nullptr}, 100.0),
               std::invalid_argument);
  EXPECT_THROW(KwaySearch(ws, *pred, 0.0), std::invalid_argument);
  KwaySearch ok(ws, *pred, 100.0);
  EXPECT_THROW(ok.search({1000.0}), std::invalid_argument);  // K mismatch
  EXPECT_THROW(ok.set_power_budget(-5.0), std::invalid_argument);
}

// ---------------------------------------------------------- KwayArbiter

TEST(KwayArbiter, StarvedLsHarvestsFromLowestPriorityBe) {
  WorkloadSet ws{{Workload::latency_sensitive("ls", 10.0),
                  Workload::best_effort("hi", 3),
                  Workload::best_effort("lo", 0)}};
  Allocation a(std::vector<AppSlice>{{6, 2, 8}, {8, 3, 6}, {6, 3, 6}});
  KwayArbiter arbiter;
  const auto next = arbiter.step(ws, {0.02, 0.0, 0.0}, a);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(arbiter.last_action(), "cores");
  EXPECT_EQ((*next)[0].cores, 7);   // starved LS gained the unit
  EXPECT_EQ((*next)[2].cores, 5);   // the priority-0 BE paid it
  EXPECT_EQ((*next)[1].cores, 8);   // the priority-3 BE is untouched

  // Cores-first across the whole BE pool: with the low-priority BE down
  // to its last core, the higher-priority one donates a core before
  // anyone gives up a way.
  Allocation thin(std::vector<AppSlice>{{6, 2, 8}, {13, 3, 6}, {1, 3, 6}});
  const auto next2 = arbiter.step(ws, {0.02, 0.0, 0.0}, thin);
  ASSERT_TRUE(next2.has_value());
  EXPECT_EQ(arbiter.last_action(), "cores");
  EXPECT_EQ((*next2)[1].cores, 12);
  EXPECT_EQ((*next2)[0].cores, 7);

  // Only when EVERY BE slice is down to one core do ways move, again
  // from the lowest-priority slice.
  Allocation bare(std::vector<AppSlice>{{12, 2, 8}, {1, 3, 6}, {1, 3, 6}});
  const auto next3 = arbiter.step(ws, {0.02, 0.0, 0.0}, bare);
  ASSERT_TRUE(next3.has_value());
  EXPECT_EQ(arbiter.last_action(), "ways");
  EXPECT_EQ((*next3)[2].llc_ways, 5);
  EXPECT_EQ((*next3)[0].llc_ways, 9);
}

TEST(KwayArbiter, AllLsFatReturnsToHighestPriorityBe) {
  WorkloadSet ws{{Workload::latency_sensitive("a", 10.0),
                  Workload::latency_sensitive("b", 10.0),
                  Workload::best_effort("hi", 3),
                  Workload::best_effort("lo", 0)}};
  Allocation a(std::vector<AppSlice>{
      {5, 2, 5}, {5, 2, 5}, {5, 3, 5}, {5, 3, 5}});
  KwayArbiter arbiter;
  const auto next = arbiter.step(ws, {0.30, 0.45, 0.0, 0.0}, a);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(arbiter.last_action(), "return:cores");
  EXPECT_EQ((*next)[1].cores, 4);  // fattest LS donated
  EXPECT_EQ((*next)[2].cores, 6);  // highest-priority BE received

  // One LS inside the band blocks any return.
  EXPECT_FALSE(arbiter.step(ws, {0.30, 0.15, 0.0, 0.0}, a).has_value());
  EXPECT_EQ(arbiter.last_action(), "");
  // Everyone in the band: nothing to do either.
  EXPECT_FALSE(arbiter.step(ws, {0.15, 0.15, 0.0, 0.0}, a).has_value());
}

// ------------------------------------------------- bit-compat twin runs

TEST(KwayTwin, RunnerRouteViaAllocationIsBitIdentical) {
  const auto& ls = find_ls("memcached");
  const auto& be = be_catalog()[0];
  const auto trace = LoadTrace::ramp_up_down(0.2, 0.7, 40);

  const auto run_once = [&](bool via_allocation) {
    sim::SimulatedServer probe(ls, be, 7);
    core::SturgeonController policy(
        core::testing::fake_predictor(probe.machine()), ls.qos_target_ms,
        probe.power_budget_w());
    exp::RunConfig rc;
    rc.seed = 11;
    rc.route_via_allocation = via_allocation;
    return exp::run_colocation(ls, be, policy, trace, rc);
  };
  const auto pair = run_once(false);
  const auto kway = run_once(true);
  EXPECT_EQ(pair.qos_guarantee_rate, kway.qos_guarantee_rate);
  EXPECT_EQ(pair.mean_be_throughput_norm, kway.mean_be_throughput_norm);
  EXPECT_EQ(pair.interval_qos_rate, kway.interval_qos_rate);
  EXPECT_EQ(pair.power_overshoot_fraction, kway.power_overshoot_fraction);
  EXPECT_EQ(pair.max_power_ratio, kway.max_power_ratio);
  EXPECT_EQ(pair.intervals_run, kway.intervals_run);
}

TEST(KwayTwin, ClusterRouteViaAllocationIsBitIdentical) {
  const auto make_fleet = [] {
    std::vector<cluster::NodeSpec> specs;
    for (int i = 0; i < 3; ++i) {
      cluster::NodeSpec spec;
      spec.ls = find_ls("memcached");
      spec.be = be_catalog()[0];
      spec.trace = LoadTrace::constant(0.3 + 0.1 * i, 12);
      const double qos_ms = spec.ls.qos_target_ms;
      spec.make_policy = [qos_ms](const sim::SimulatedServer& server) {
        return std::make_unique<core::SturgeonController>(
            core::testing::fake_predictor(server.machine()), qos_ms,
            server.power_budget_w());
      };
      specs.push_back(std::move(spec));
    }
    return specs;
  };
  const auto run_once = [&](bool via_allocation, std::size_t threads = 0) {
    cluster::ClusterConfig config;
    config.seed = 23;
    config.route_via_allocation = via_allocation;
    config.threads = threads;
    cluster::ClusterSim sim(make_fleet(), config);
    return sim.run();
  };
  const auto pair = run_once(false);
  const auto kway = run_once(true);
  // The Allocation route stays bit-identical across lockstep widths too.
  const auto kway_1t = run_once(true, 1);
  const auto kway_8t = run_once(true, 8);
  EXPECT_EQ(kway_1t.fleet_qos_guarantee_rate, kway.fleet_qos_guarantee_rate);
  EXPECT_EQ(kway_8t.fleet_qos_guarantee_rate, kway.fleet_qos_guarantee_rate);
  EXPECT_EQ(kway_1t.mean_cluster_power_w, kway.mean_cluster_power_w);
  EXPECT_EQ(kway_8t.mean_cluster_power_w, kway.mean_cluster_power_w);
  EXPECT_EQ(pair.fleet_qos_guarantee_rate, kway.fleet_qos_guarantee_rate);
  EXPECT_EQ(pair.aggregate_be_throughput, kway.aggregate_be_throughput);
  EXPECT_EQ(pair.mean_cluster_power_w, kway.mean_cluster_power_w);
  EXPECT_EQ(pair.max_cluster_power_ratio, kway.max_cluster_power_ratio);
  ASSERT_EQ(pair.node_results.size(), kway.node_results.size());
  for (std::size_t i = 0; i < pair.node_results.size(); ++i) {
    EXPECT_EQ(pair.node_results[i].total_completed,
              kway.node_results[i].total_completed);
    EXPECT_EQ(pair.node_results[i].total_violations,
              kway.node_results[i].total_violations);
    EXPECT_EQ(pair.node_results[i].mean_be_throughput_norm,
              kway.node_results[i].mean_be_throughput_norm);
    EXPECT_EQ(pair.node_results[i].mean_cap_w,
              kway.node_results[i].mean_cap_w);
  }
}

}  // namespace
}  // namespace sturgeon::core
