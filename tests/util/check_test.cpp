#include "util/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/invariants.h"
#include "util/types.h"

namespace sturgeon {
namespace {

TEST(SturgeonCheck, PassingCheckIsSilent) {
  STURGEON_CHECK(1 + 1 == 2);
  STURGEON_CHECK(true, "never rendered");
  STURGEON_CHECK_RANGE(5, 1, 10);
  SUCCEED();
}

TEST(SturgeonCheck, MessageOperandsNotEvaluatedOnSuccess) {
  int evaluations = 0;
  const auto count = [&evaluations] {
    ++evaluations;
    return 7;
  };
  STURGEON_CHECK(true, "value = " << count());
  EXPECT_EQ(evaluations, 0);
}

TEST(SturgeonCheckDeathTest, FailureAbortsWithContext) {
  EXPECT_DEATH(STURGEON_CHECK(false), "STURGEON_CHECK failed: false");
  const int x = 41;
  EXPECT_DEATH(STURGEON_CHECK(x > 41, "x = " << x), "x = 41");
}

TEST(SturgeonCheckDeathTest, RangeFailureReportsValueAndBounds) {
  const int v = 42;
  EXPECT_DEATH(STURGEON_CHECK_RANGE(v, 0, 10), "v = 42 outside \\[0, 10\\]");
  EXPECT_DEATH(STURGEON_CHECK_RANGE(-1.5, 0.0, 1.0), "outside \\[0, 1\\]");
}

#if STURGEON_ENABLE_DCHECKS
TEST(SturgeonCheckDeathTest, DcheckActiveInDebugBuilds) {
  EXPECT_DEATH(STURGEON_DCHECK(false, "dcheck fired"), "dcheck fired");
  EXPECT_DEATH(STURGEON_DCHECK_RANGE(99, 0, 10), "outside");
}
#else
TEST(SturgeonCheck, DcheckCompiledOutInRelease) {
  int evaluations = 0;
  const auto boom = [&evaluations] {
    ++evaluations;
    return false;
  };
  STURGEON_DCHECK(boom(), "never");
  STURGEON_DCHECK_RANGE(99, 0, 10);
  EXPECT_EQ(evaluations, 0);  // disabled dchecks evaluate nothing
}
#endif

// ---- domain invariant helpers ------------------------------------------

TEST(Invariants, ValidConfigPasses) {
  const MachineSpec m = MachineSpec::xeon_e5_2630_v4();
  Partition p;
  p.ls = AppSlice{8, 3, 7};
  p.be = AppSlice{12, 5, 13};
  ValidateConfig(m, p, "test");
  ValidateConfig(m, Partition::all_to_ls(m), "test");  // empty BE allowed
  SUCCEED();
}

TEST(InvariantsDeathTest, RejectsMalformedConfigs) {
  const MachineSpec m = MachineSpec::xeon_e5_2630_v4();
  Partition p;
  p.ls = AppSlice{8, 3, 7};
  p.be = AppSlice{12, 5, 13};

  Partition bad = p;
  bad.ls.cores = 0;
  EXPECT_DEATH(ValidateConfig(m, bad, "test"), "LS cores = 0");

  bad = p;
  bad.be.cores = 13;  // total 21 > 20
  EXPECT_DEATH(ValidateConfig(m, bad, "test"), "core total 21");

  bad = p;
  bad.be.llc_ways = 14;  // total 21 > 20
  EXPECT_DEATH(ValidateConfig(m, bad, "test"), "way total 21");

  bad = p;
  bad.ls.freq_level = m.num_freq_levels();
  EXPECT_DEATH(ValidateConfig(m, bad, "test"), "P-state");

  EXPECT_DEATH(
      ValidateConfig(m, Partition::all_to_ls(m), "test",
                     /*allow_empty_be=*/false),
      "empty BE slice");
}

TEST(Invariants, PowerBudget) {
  ValidatePowerBudget(105.0, "test");
  SUCCEED();
}

TEST(InvariantsDeathTest, RejectsBadPowerBudgets) {
  EXPECT_DEATH(ValidatePowerBudget(0.0, "test"), "finite and > 0");
  EXPECT_DEATH(ValidatePowerBudget(-5.0, "test"), "finite and > 0");
  EXPECT_DEATH(
      ValidatePowerBudget(std::numeric_limits<double>::quiet_NaN(), "test"),
      "finite and > 0");
}

TEST(Invariants, ModelOutputPassesThroughValue) {
  EXPECT_DOUBLE_EQ(ValidateModelOutput(12.5, "power"), 12.5);
  EXPECT_DOUBLE_EQ(ValidateModelOutput(-0.25, "resid", true), -0.25);
}

TEST(InvariantsDeathTest, RejectsBadModelOutputs) {
  EXPECT_DEATH(
      ValidateModelOutput(std::numeric_limits<double>::infinity(), "power"),
      "not finite");
  EXPECT_DEATH(
      ValidateModelOutput(std::numeric_limits<double>::quiet_NaN(), "power",
                          true),
      "not finite");
  EXPECT_DEATH(ValidateModelOutput(-1.0, "power"), "< 0");
}

}  // namespace
}  // namespace sturgeon
