// Runtime behavior of the annotated mutex wrappers (all build legs; the
// compile-time analysis itself is exercised by the STURGEON_ANALYZE
// configure gate and tests/util/thread_annotations_fail.cpp).
#include "util/thread_annotations.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sturgeon {
namespace {

// Runtime ownership probes. The analysis is waived: these deliberately
// acquire-and-release in one expression to observe contention, a dance
// the static lock-state tracking is designed to reject.
bool try_lock_now(Mutex& mu) STURGEON_NO_THREAD_SAFETY_ANALYSIS {
  if (mu.try_lock()) {
    mu.unlock();
    return true;
  }
  return false;
}

bool try_lock_shared_now(SharedMutex& mu) STURGEON_NO_THREAD_SAFETY_ANALYSIS {
  if (mu.try_lock_shared()) {
    mu.unlock_shared();
    return true;
  }
  return false;
}

struct SharedCounter {
  Mutex mu;
  int value STURGEON_GUARDED_BY(mu) = 0;
};

TEST(ThreadAnnotationsTest, MutexLockExcludesConcurrentWriters) {
  SharedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(counter.mu);
        ++counter.value;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(counter.mu);
  EXPECT_EQ(counter.value, kThreads * kIters);
}

TEST(ThreadAnnotationsTest, TryLockReflectsOwnership) {
  Mutex mu;
  EXPECT_TRUE(try_lock_now(mu));
  MutexLock lock(mu);
  std::thread contender([&] { EXPECT_FALSE(try_lock_now(mu)); });
  contender.join();
}

struct SharedSlot {
  SharedMutex mu;
  int value STURGEON_GUARDED_BY(mu) = 41;
};

TEST(ThreadAnnotationsTest, SharedMutexAllowsParallelReaders) {
  SharedSlot slot;
  {
    WriterMutexLock lock(slot.mu);
    slot.value = 42;
  }
  ReaderMutexLock first(slot.mu);
  // A second shared acquisition must succeed while the first is held.
  EXPECT_TRUE(try_lock_shared_now(slot.mu));
  EXPECT_EQ(slot.value, 42);
}

TEST(ThreadAnnotationsTest, SharedMutexWriterExcludesReaders) {
  SharedMutex mu;
  WriterMutexLock lock(mu);
  std::thread reader([&] { EXPECT_FALSE(try_lock_shared_now(mu)); });
  reader.join();
}

struct Gate {
  Mutex mu;
  CondVar cv;
  bool ready STURGEON_GUARDED_BY(mu) = false;
};

TEST(ThreadAnnotationsTest, CondVarWakesWaiterUnderMutex) {
  Gate gate;
  int observed = -1;
  std::thread waiter([&] {
    MutexLock lock(gate.mu);
    while (!gate.ready) gate.cv.wait(gate.mu);
    observed = 1;
  });
  {
    MutexLock lock(gate.mu);
    gate.ready = true;
  }
  gate.cv.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

}  // namespace
}  // namespace sturgeon
