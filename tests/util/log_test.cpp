#include "util/log.h"

#include <gtest/gtest.h>

namespace sturgeon {
namespace {

/// Restore the global level after each test.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LogTest, LevelRoundTrips) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LogTest, DefaultIsWarn) {
  // The library default keeps bench output clean.
  EXPECT_EQ(saved_, LogLevel::kWarn);
}

TEST_F(LogTest, MacrosEvaluateLazily) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return std::string("payload");
  };
  LOG_DEBUG << expensive();
  LOG_ERROR << expensive();
  // Below-threshold statements must not evaluate their stream arguments.
  EXPECT_EQ(evaluations, 0);

  set_log_level(LogLevel::kDebug);
  LOG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, EmissionDoesNotThrow) {
  set_log_level(LogLevel::kDebug);
  EXPECT_NO_THROW(log_message(LogLevel::kInfo, "info line"));
  // The macro expands to a statement, so wrap it for EXPECT_NO_THROW.
  const auto emit = [] { LOG_WARN << "warn " << 42 << ' ' << 1.5; };
  EXPECT_NO_THROW(emit());
}

}  // namespace
}  // namespace sturgeon
