#include "util/types.h"

#include <gtest/gtest.h>

namespace sturgeon {
namespace {

TEST(MachineSpec, PaperPlatformShape) {
  const auto m = MachineSpec::xeon_e5_2630_v4();
  EXPECT_EQ(m.num_cores, 20);
  EXPECT_EQ(m.llc_ways, 20);
  EXPECT_DOUBLE_EQ(m.min_freq_ghz(), 1.2);
  EXPECT_DOUBLE_EQ(m.max_freq_ghz(), 2.2);
  EXPECT_EQ(m.num_freq_levels(), 11);
  // Paper counts 20 x 10 x 20 x 10 = 40000 with 10 P-states; our table has
  // 11 levels (1.2..2.2 at 0.1 GHz), so the space is 20*11*20*11.
  EXPECT_EQ(m.config_space_size(), 20ull * 11ull * 20ull * 11ull);
}

TEST(MachineSpec, FreqLookupAndInverse) {
  const auto m = MachineSpec::xeon_e5_2630_v4();
  EXPECT_DOUBLE_EQ(m.freq_at(0), 1.2);
  EXPECT_NEAR(m.freq_at(5), 1.7, 1e-12);
  EXPECT_EQ(m.level_for(1.7), 5);
  EXPECT_EQ(m.level_for(0.1), 0);     // clamped low
  EXPECT_EQ(m.level_for(9.9), 10);    // clamped high
  EXPECT_EQ(m.level_for(1.74), 5);    // nearest
  EXPECT_THROW(m.freq_at(-1), std::out_of_range);
  EXPECT_THROW(m.freq_at(11), std::out_of_range);
}

TEST(Partition, ValidityRules) {
  const auto m = MachineSpec::xeon_e5_2630_v4();
  Partition p;
  p.ls = {8, 3, 10};
  p.be = {12, 10, 10};
  EXPECT_TRUE(p.valid_for(m));

  p.be.cores = 13;  // 8 + 13 > 20
  EXPECT_FALSE(p.valid_for(m));
  p.be.cores = 12;

  p.ls.llc_ways = 11;  // 11 + 10 > 20
  EXPECT_FALSE(p.valid_for(m));
  p.ls.llc_ways = 10;

  p.ls.cores = 0;  // both slices must be non-empty
  EXPECT_FALSE(p.valid_for(m));
  p.ls.cores = 8;

  p.be.freq_level = 11;  // out of the P-state table
  EXPECT_FALSE(p.valid_for(m));
}

TEST(Partition, PaperStyleToString) {
  const auto m = MachineSpec::xeon_e5_2630_v4();
  Partition p;
  p.ls = {8, 0, 7};
  p.be = {12, 10, 13};
  EXPECT_EQ(p.to_string(m), "<8C, 1.2F, 7L; 12C, 2.2F, 13L>");
}

TEST(Partition, AllToLsIsInitialAllocation) {
  const auto m = MachineSpec::xeon_e5_2630_v4();
  const auto p = Partition::all_to_ls(m);
  EXPECT_EQ(p.ls.cores, 20);
  EXPECT_EQ(p.ls.llc_ways, 20);
  EXPECT_EQ(p.ls.freq_level, m.max_freq_level());
  EXPECT_EQ(p.be.cores, 0);
}

TEST(Partition, ComplementSlice) {
  const auto m = MachineSpec::xeon_e5_2630_v4();
  const AppSlice ls{4, 4, 6};
  const auto be = Allocation::complement(m, ls, 8);
  EXPECT_EQ(be.cores, 16);
  EXPECT_EQ(be.llc_ways, 14);
  EXPECT_EQ(be.freq_level, 8);
  // Frequency level is clamped into the table.
  EXPECT_EQ(Allocation::complement(m, ls, 99).freq_level, m.max_freq_level());
  EXPECT_EQ(Allocation::complement(m, ls, -3).freq_level, 0);
}

}  // namespace
}  // namespace sturgeon
