// TSan-targeted stress tests for ThreadPool.
//
// These tests exist primarily for the STURGEON_SANITIZE=thread build: many
// external producer threads hammer submit()/parallel_for() on one shared
// pool so that any missing synchronization on the queue, the stopping flag
// or the futures shows up as a reported race rather than a rare flake. The
// assertions still verify full delivery, so the tests are meaningful (if
// less sharp) in plain builds too.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sturgeon {
namespace {

TEST(ThreadPoolStress, ConcurrentProducersSubmit) {
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 250;
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &sum] {
      std::vector<std::future<void>> futs;
      futs.reserve(kTasksPerProducer);
      for (int i = 1; i <= kTasksPerProducer; ++i) {
        futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
      }
      for (auto& f : futs) f.get();
    });
  }
  for (auto& t : producers) t.join();
  const long per_producer = kTasksPerProducer * (kTasksPerProducer + 1L) / 2L;
  EXPECT_EQ(sum.load(), kProducers * per_producer);
}

TEST(ThreadPoolStress, ConcurrentParallelForCallers) {
  // parallel_for from several caller threads at once: the blocks of all
  // callers interleave in the shared queue.
  constexpr int kCallers = 3;
  constexpr std::size_t kN = 512;
  ThreadPool pool(4);
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& v : hits) {
    v = std::vector<std::atomic<int>>(kN);
  }
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      pool.parallel_for(kN, [&hits, c](std::size_t i) {
        hits[static_cast<std::size_t>(c)][i].fetch_add(1);
      });
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& v : hits) {
    for (const auto& h : v) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolStress, ProducersRacingShutdown) {
  // Producers keep submitting while another thread shuts the pool down;
  // every submit either succeeds (and its task runs: shutdown drains the
  // queue) or throws the documented runtime_error. Nothing may be lost.
  ThreadPool pool(2);
  std::atomic<long> executed{0};
  std::atomic<long> accepted{0};
  constexpr int kProducers = 3;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (;;) {
        try {
          pool.submit([&executed] { executed.fetch_add(1); });
          accepted.fetch_add(1);
        } catch (const std::runtime_error&) {
          return;  // pool shut down
        }
        std::this_thread::yield();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pool.shutdown();
  for (auto& t : producers) t.join();
  EXPECT_EQ(executed.load(), accepted.load());
}

TEST(ThreadPoolStress, SizeRacingShutdown) {
  // Regression test: size() used to read the worker vector without taking
  // the pool mutex, racing the swap() shutdown() performs under it. Under
  // TSan the unlocked read was a reported data race; here readers poll
  // size() continuously across the shutdown transition and must only ever
  // observe the two legal values (full strength, then zero).
  constexpr std::size_t kWorkers = 3;
  constexpr int kReaders = 4;
  ThreadPool pool(kWorkers);
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const std::size_t n = pool.size();
        if (n != kWorkers && n != 0) bad.fetch_add(1);
        std::this_thread::yield();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pool.shutdown();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(ThreadPoolStress, ExceptionsUnderConcurrency) {
  // Throwing tasks racing non-throwing ones must not corrupt delivery.
  ThreadPool pool(4);
  std::atomic<int> ok{0};
  std::atomic<int> threw{0};
  std::vector<std::future<void>> futs;
  futs.reserve(400);
  for (int i = 0; i < 400; ++i) {
    futs.push_back(pool.submit([i] {
      if (i % 7 == 0) throw std::runtime_error("boom");
    }));
  }
  for (auto& f : futs) {
    try {
      f.get();
      ok.fetch_add(1);
    } catch (const std::runtime_error&) {
      threw.fetch_add(1);
    }
  }
  EXPECT_EQ(threw.load(), 400 / 7 + 1);
  EXPECT_EQ(ok.load() + threw.load(), 400);
}

}  // namespace
}  // namespace sturgeon
