// Negative compile-test for the thread-safety analysis layer.
//
// The STURGEON_ANALYZE configure step compiles this file twice via
// try_compile (see the gate in the top-level CMakeLists.txt):
//
//   1. as-is: MUST FAIL to compile -- it reads/writes GUARDED_BY fields
//      without their mutex and re-enters an EXCLUDES method with the
//      lock held, exactly the bugs the analysis exists to reject;
//   2. with -DSTURGEON_TA_FIXED: the same logic with correct locking
//      MUST COMPILE, proving a rejection in (1) comes from the analysis
//      and not from a broken include path or flag.
//
// Keep every violation below annotated with the diagnostic it triggers;
// if clang ever stops rejecting one, the configure step fails loudly.
#include "util/thread_annotations.h"

namespace {

class Account {
 public:
  // EXCLUDES: deposit() acquires mu_ itself; calling it with mu_ held
  // would self-deadlock on the non-recursive mutex.
  void deposit(int amount) STURGEON_EXCLUDES(mu_) {
    sturgeon::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance_unlocked() const {
#ifdef STURGEON_TA_FIXED
    sturgeon::MutexLock lock(mu_);
    return balance_;
#else
    // warning: reading variable 'balance_' requires holding mutex 'mu_'
    return balance_;
#endif
  }

  void audit() STURGEON_EXCLUDES(mu_) {
#ifdef STURGEON_TA_FIXED
    deposit(0);
#else
    sturgeon::MutexLock lock(mu_);
    // warning: cannot call function 'deposit' while mutex 'mu_' is held
    deposit(0);
#endif
  }

 private:
  mutable sturgeon::Mutex mu_;
  int balance_ STURGEON_GUARDED_BY(mu_) = 0;
};

int touch_without_lock(Account& account) {
  return account.balance_unlocked();
}

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  account.audit();
  return touch_without_lock(account);
}
