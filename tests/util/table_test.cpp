#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sturgeon {
namespace {

TEST(TablePrinter, AlignsAndRules) {
  TablePrinter t({"pair", "value"});
  t.add_row({"bs", TablePrinter::fmt(1.2345, 2)});
  t.add_row({"ferret", "10.00"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("pair"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("ferret"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinter, RejectsBadArity) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt_pct(0.2496, 2), "24.96%");
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os, {"t", "lat"});
  w.write_row(std::vector<std::string>{"0", "1.5"});
  w.write_row(std::vector<double>{1.0, 2.5});
  const std::string out = os.str();
  EXPECT_NE(out.find("t,lat\n"), std::string::npos);
  EXPECT_NE(out.find("0,1.5\n"), std::string::npos);
  EXPECT_NE(out.find("1.000000,2.500000\n"), std::string::npos);
}

TEST(CsvWriter, RejectsArityMismatch) {
  std::ostringstream os;
  CsvWriter w(os, {"a"});
  EXPECT_THROW(w.write_row(std::vector<std::string>{"1", "2"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon
