#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace sturgeon {
namespace {

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeEqualsBulk) {
  OnlineStats a, b, all;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 1.5);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Percentile, ExactSmallCases) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 95), 7.0);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 50), 5.0);
}

TEST(P2Quantile, MatchesExactOnNormalData) {
  Rng rng(21);
  P2Quantile p95(0.95);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.normal(10.0, 3.0);
    p95.add(v);
    all.push_back(v);
  }
  const double exact = percentile(all, 95.0);
  EXPECT_NEAR(p95.value(), exact, 0.1);
}

TEST(P2Quantile, SmallSampleIsExact) {
  P2Quantile p50(0.5);
  p50.add(1.0);
  p50.add(3.0);
  p50.add(2.0);
  EXPECT_DOUBLE_EQ(p50.value(), 2.0);
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

TEST(P2Quantile, HeavyTailTracksHighQuantile) {
  Rng rng(23);
  P2Quantile p99(0.99);
  std::vector<double> all;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.lognormal_mean_cv(5.0, 1.2);
    p99.add(v);
    all.push_back(v);
  }
  const double exact = percentile(all, 99.0);
  EXPECT_NEAR(p99.value() / exact, 1.0, 0.08);
}

TEST(Metrics, RSquared) {
  const std::vector<double> truth{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(r_squared(truth, truth), 1.0);
  // Mean predictor scores 0.
  const std::vector<double> mean_pred(5, 3.0);
  EXPECT_NEAR(r_squared(truth, mean_pred), 0.0, 1e-12);
  EXPECT_THROW(r_squared(truth, {1.0}), std::invalid_argument);
}

TEST(Metrics, MseMae) {
  const std::vector<double> t{1, 2, 3};
  const std::vector<double> p{2, 2, 5};
  EXPECT_DOUBLE_EQ(mse(t, p), (1.0 + 0.0 + 4.0) / 3.0);
  EXPECT_DOUBLE_EQ(mae(t, p), (1.0 + 0.0 + 2.0) / 3.0);
}

TEST(Metrics, Accuracy) {
  EXPECT_DOUBLE_EQ(accuracy({1, 0, 1, 1}, {1, 0, 0, 1}), 0.75);
}

TEST(Metrics, PrecisionRecallF1) {
  // truth: 3 positives; pred: 2 true positives, 1 false positive.
  const std::vector<int> truth{1, 1, 1, 0, 0, 0};
  const std::vector<int> pred{1, 1, 0, 1, 0, 0};
  EXPECT_DOUBLE_EQ(precision(truth, pred), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(recall(truth, pred), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(f1_score(truth, pred), 2.0 / 3.0);

  // Perfect classifier.
  EXPECT_DOUBLE_EQ(f1_score(truth, truth), 1.0);
}

TEST(Metrics, F1DegenerateCases) {
  // No predicted positives.
  EXPECT_DOUBLE_EQ(precision({1, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(f1_score({1, 0}, {0, 0}), 0.0);
  // No actual positives but a false alarm.
  EXPECT_DOUBLE_EQ(recall({0, 0}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(f1_score({0, 0}, {1, 0}), 0.0);
  EXPECT_THROW(f1_score({1}, {1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon
