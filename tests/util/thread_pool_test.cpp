#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace sturgeon {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 500; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 500L * 501L / 2L);
}

TEST(ThreadPool, DefaultSizePositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
  EXPECT_THROW(pool.parallel_for(4, [](std::size_t) {}),
               std::runtime_error);
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  ThreadPool pool(1);
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  pool.shutdown();
  for (auto& f : futs) f.get();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ParallelForFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForSingleItem) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingBlock) {
  // One index per block: every index >= 1 throws; the lowest failing
  // block (index 1) must win regardless of completion order.
  ThreadPool pool(4);
  try {
    pool.parallel_for(4, [](std::size_t i) {
      if (i >= 1) throw std::runtime_error("fail-" + std::to_string(i));
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "fail-1");
  }
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingBlockWhenChunked) {
  // 2 workers, 8 items -> blocks [0,4) and [4,8). Failures at i=2 and
  // i=5 land in different blocks; block 0's exception must surface.
  ThreadPool pool(2);
  try {
    pool.parallel_for(8, [](std::size_t i) {
      if (i == 2 || i == 5) {
        throw std::runtime_error("fail-" + std::to_string(i));
      }
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "fail-2");
  }
}

TEST(ThreadPool, ParallelForWaitsForAllBlocksBeforeRethrow) {
  // If parallel_for rethrew before every block finished, the still-
  // running blocks would race the destruction of `completed` (ASan/TSan
  // would flag it) and this count would be short. 4 workers, n = 16 ->
  // chunk = 4; index 0 throws, aborting the rest of block [0,4), while
  // the other three blocks must run to completion: 12 iterations.
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(16, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("early");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      completed.fetch_add(1);
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error&) {
    EXPECT_EQ(completed.load(), 12);
  }
}

}  // namespace
}  // namespace sturgeon
