#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sturgeon {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 500; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 500L * 501L / 2L);
}

TEST(ThreadPool, DefaultSizePositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace sturgeon
