#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace sturgeon {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng rng(7);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 100000; ++i) {
    ++hits[rng.next_below(10)];
  }
  for (int h : hits) {
    EXPECT_GT(h, 9000);
    EXPECT_LT(h, 11000);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(17);
  for (double mean : {0.5, 5.0, 80.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, LognormalMeanCv) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal_mean_cv(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
  // cv=0 degenerates to the mean.
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(3.0, 0.0), 3.0);
}

TEST(DeriveSeed, StableAndDecorrelated) {
  // Same (root, stream) -> same child seed, always.
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  // Adjacent roots and adjacent streams must land far apart: the cluster
  // layer hands node i the seed derive_seed(cluster_seed, i), so node
  // streams may not collide or correlate for small indices.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t root : {0ULL, 1ULL, 2ULL, 42ULL}) {
    for (std::uint64_t stream = 0; stream < 16; ++stream) {
      seen.push_back(derive_seed(root, stream));
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    for (std::size_t j = i + 1; j < seen.size(); ++j) {
      EXPECT_NE(seen[i], seen[j]) << "i=" << i << " j=" << j;
    }
  }
}

TEST(DeriveSeed, ChildGeneratorsAreIndependent) {
  Rng a(derive_seed(9, 0)), b(derive_seed(9, 1));
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(DeriveSeed, SubstreamOverloadAddsSecondLevel) {
  EXPECT_EQ(derive_seed(5, 2, 3), derive_seed(5, 2, 3));
  EXPECT_NE(derive_seed(5, 2, 3), derive_seed(5, 2, 4));
  EXPECT_NE(derive_seed(5, 2, 3), derive_seed(5, 3, 2));
  EXPECT_NE(derive_seed(5, 2, 3), derive_seed(5, 2));
}

TEST(Rng, ForkIsIndependentAndStable) {
  Rng parent(99);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(1);
  Rng c3 = parent.fork(2);
  EXPECT_EQ(c1.next_u64(), c2.next_u64());  // same label -> same stream
  EXPECT_NE(c1.next_u64(), c3.next_u64());
}

}  // namespace
}  // namespace sturgeon
