#include "cluster/placement.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "workloads/app_profile.h"

namespace sturgeon::cluster {
namespace {

TEST(Placement, RoundRobinIsIdentity) {
  const std::vector<double> demand = {50.0, 10.0, 30.0};
  const std::vector<double> capacity = {60.0, 120.0, 90.0};
  const auto a = place(PlacementKind::kRoundRobin, demand, capacity);
  ASSERT_EQ(a.size(), 3u);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], i);
}

TEST(Placement, BinPackPairsByRank) {
  // Hungriest workload (1: 30 W) onto the biggest node (0: 100 W), and
  // so on down the ranks.
  const std::vector<double> demand = {10.0, 30.0, 20.0};
  const std::vector<double> capacity = {100.0, 50.0, 80.0};
  const auto a = place(PlacementKind::kBinPack, demand, capacity);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0], 1u);  // biggest node <- hungriest workload
  EXPECT_EQ(a[2], 2u);  // middle node <- middle workload
  EXPECT_EQ(a[1], 0u);  // smallest node <- lightest workload
}

TEST(Placement, BinPackBreaksTiesTowardLowerIndex) {
  const std::vector<double> demand = {20.0, 20.0, 20.0};
  const std::vector<double> capacity = {50.0, 50.0, 50.0};
  const auto a = place(PlacementKind::kBinPack, demand, capacity);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], i);
}

TEST(Placement, WorstFitSpreadsOntoRoomiestNodes) {
  // Equal demands arrive in order; each takes the roomiest free node.
  const std::vector<double> demand = {10.0, 10.0, 10.0};
  const std::vector<double> capacity = {100.0, 50.0, 80.0};
  const auto a = place(PlacementKind::kWorstFit, demand, capacity);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0], 0u);  // workload 0 -> node 0 (roomiest)
  EXPECT_EQ(a[2], 1u);  // workload 1 -> node 2 (next roomiest)
  EXPECT_EQ(a[1], 2u);  // workload 2 -> node 1 (last free)
}

TEST(Placement, EveryStrategyIsAPermutation) {
  const std::vector<double> demand = {40.0, 10.0, 25.0, 33.0};
  const std::vector<double> capacity = {70.0, 110.0, 90.0, 60.0};
  for (const auto kind : {PlacementKind::kRoundRobin, PlacementKind::kBinPack,
                          PlacementKind::kWorstFit}) {
    const auto a = place(kind, demand, capacity);
    std::vector<bool> seen(a.size(), false);
    for (const std::size_t w : a) {
      ASSERT_LT(w, a.size()) << to_string(kind);
      EXPECT_FALSE(seen[w]) << to_string(kind) << ": duplicate workload";
      seen[w] = true;
    }
  }
}

TEST(Placement, RejectsEmptyAndMismatchedInputs) {
  EXPECT_THROW(place(PlacementKind::kRoundRobin, {}, {}),
               std::invalid_argument);
  EXPECT_THROW(place(PlacementKind::kBinPack, {10.0}, {50.0, 60.0}),
               std::invalid_argument);
}

TEST(Placement, PairPowerEstimateIsSaneAndMonotone) {
  const LsProfile ls = find_ls("memcached");
  const auto& bes = be_catalog();
  ASSERT_FALSE(bes.empty());
  const sim::ServerConfig server;

  const double base = estimate_pair_power_w(ls, bes[0], server);
  EXPECT_TRUE(std::isfinite(base));
  EXPECT_GT(base, 0.0);

  // A hungrier BE (higher power activity) must raise the estimate.
  BeProfile hungry = bes[0];
  hungry.power_activity = std::min(1.0, hungry.power_activity * 1.5);
  if (hungry.power_activity > bes[0].power_activity) {
    EXPECT_GT(estimate_pair_power_w(ls, hungry, server), base);
  }
}

TEST(Placement, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(PlacementKind::kRoundRobin), "round-robin");
  EXPECT_STREQ(to_string(PlacementKind::kBinPack), "bin-pack");
  EXPECT_STREQ(to_string(PlacementKind::kWorstFit), "worst-fit");
}

}  // namespace
}  // namespace sturgeon::cluster
