// End-to-end ClusterSim tests on fake-model policies (no training), plus
// the determinism contract the cluster layer promises: one cluster seed
// fixes every node's streams, so results are bit-identical across
// lockstep thread counts.
#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "../core/fake_models.h"
#include "cluster/export.h"
#include "core/controller.h"
#include "workloads/app_profile.h"

namespace sturgeon::cluster {
namespace {

/// Sturgeon node on hand-crafted analytic models: full controller path,
/// zero training cost.
NodeSpec fake_spec(const LoadTrace& trace) {
  NodeSpec spec;
  spec.ls = find_ls("memcached");
  spec.be = be_catalog()[0];
  spec.trace = trace;
  const double qos_ms = spec.ls.qos_target_ms;
  spec.make_policy = [qos_ms](const sim::SimulatedServer& server) {
    return std::make_unique<core::SturgeonController>(
        core::testing::fake_predictor(server.machine()), qos_ms,
        server.power_budget_w());
  };
  return spec;
}

std::vector<NodeSpec> fake_fleet(int n, int duration_s) {
  std::vector<NodeSpec> specs;
  for (int i = 0; i < n; ++i) {
    const double load = 0.3 + 0.1 * i;
    specs.push_back(fake_spec(LoadTrace::constant(load, duration_s)));
  }
  return specs;
}

TEST(ClusterSim, RejectsBadConstruction) {
  EXPECT_THROW(ClusterSim(std::vector<NodeSpec>{}), std::invalid_argument);
  ClusterConfig config;
  config.oversubscription = 0.0;
  EXPECT_THROW(ClusterSim(fake_fleet(1, 5), config), std::invalid_argument);
  config.oversubscription = 1.5;
  EXPECT_THROW(ClusterSim(fake_fleet(1, 5), config), std::invalid_argument);
}

TEST(ClusterSim, RunIsOneShot) {
  ClusterConfig config;
  config.seed = 3;
  ClusterSim sim(fake_fleet(1, 5), config);
  EXPECT_FALSE(sim.has_run());
  (void)sim.run();
  EXPECT_TRUE(sim.has_run());
  EXPECT_THROW(sim.run(), std::logic_error);
  // A failed re-run attempt leaves the guard set.
  EXPECT_TRUE(sim.has_run());
}

// Resilience machinery compiled in but left at defaults must not perturb
// the simulation: the fault-injection hooks are observe-only until armed.
TEST(ClusterSim, DefaultResilienceIsBitCompatible) {
  ClusterConfig plain;
  plain.seed = 17;
  ClusterSim a(fake_fleet(3, 10), plain);
  const ClusterResult ra = a.run();

  ClusterConfig spelled_out;
  spelled_out.seed = 17;
  spelled_out.resilience = ResilienceConfig{};
  spelled_out.faults = fault::FaultConfig{};
  ClusterSim b(fake_fleet(3, 10), spelled_out);
  const ClusterResult rb = b.run();

  EXPECT_EQ(ra.fleet_qos_guarantee_rate, rb.fleet_qos_guarantee_rate);
  EXPECT_EQ(ra.aggregate_be_throughput, rb.aggregate_be_throughput);
  EXPECT_EQ(ra.mean_cluster_power_w, rb.mean_cluster_power_w);
  for (std::size_t i = 0; i < ra.node_results.size(); ++i) {
    EXPECT_EQ(ra.node_results[i].total_completed,
              rb.node_results[i].total_completed);
    EXPECT_EQ(ra.node_results[i].mean_cap_w, rb.node_results[i].mean_cap_w);
    EXPECT_EQ(ra.node_results[i].faults_injected, 0u);
    EXPECT_EQ(ra.node_results[i].epochs_down, 0);
    EXPECT_EQ(ra.node_results[i].safe_mode_epochs, 0);
  }
  EXPECT_EQ(ra.dead_node_epochs, 0);
  EXPECT_TRUE(ra.recovery_mttr_epochs.empty());
  EXPECT_LE(ra.max_cap_sum_ratio, 1.0 + 1e-9);
}

// The satellite contract: same cluster seed => bit-identical
// ClusterResult regardless of how many lockstep workers advance the
// fleet. Nodes share no mutable state and both the coordinator split and
// the aggregation are sequential in node order, so the schedule cannot
// leak into the numbers.
TEST(ClusterSim, DeterministicAcrossThreadCounts) {
  const int kNodes = 3, kEpochs = 20;
  auto run_with = [&](std::size_t threads) {
    ClusterConfig config;
    config.seed = 5;
    config.threads = threads;
    ClusterSim sim(fake_fleet(kNodes, kEpochs), config);
    return sim.run();
  };
  const ClusterResult a = run_with(1);
  const ClusterResult b = run_with(4);

  EXPECT_EQ(a.fleet_qos_guarantee_rate, b.fleet_qos_guarantee_rate);
  EXPECT_EQ(a.aggregate_be_throughput, b.aggregate_be_throughput);
  EXPECT_EQ(a.mean_cluster_power_w, b.mean_cluster_power_w);
  EXPECT_EQ(a.max_cluster_power_ratio, b.max_cluster_power_ratio);
  EXPECT_EQ(a.cluster_overshoot_fraction, b.cluster_overshoot_fraction);
  ASSERT_EQ(a.node_results.size(), b.node_results.size());
  for (std::size_t i = 0; i < a.node_results.size(); ++i) {
    const NodeResult& x = a.node_results[i];
    const NodeResult& y = b.node_results[i];
    EXPECT_EQ(x.total_completed, y.total_completed) << "node " << i;
    EXPECT_EQ(x.total_violations, y.total_violations) << "node " << i;
    EXPECT_EQ(x.qos_guarantee_rate, y.qos_guarantee_rate) << "node " << i;
    EXPECT_EQ(x.mean_be_throughput_norm, y.mean_be_throughput_norm)
        << "node " << i;
    EXPECT_EQ(x.mean_cap_w, y.mean_cap_w) << "node " << i;
    EXPECT_EQ(x.max_power_ratio, y.max_power_ratio) << "node " << i;
    EXPECT_EQ(x.throttled_epochs, y.throttled_epochs) << "node " << i;
  }
}

TEST(ClusterSim, DifferentSeedsProduceDifferentRuns) {
  auto run_with = [&](std::uint64_t seed) {
    ClusterConfig config;
    config.seed = seed;
    ClusterSim sim(fake_fleet(2, 20), config);
    return sim.run();
  };
  const ClusterResult a = run_with(1);
  const ClusterResult b = run_with(2);
  EXPECT_NE(a.mean_cluster_power_w, b.mean_cluster_power_w);
}

// Mismatched trace lengths across the fleet: run() extends to the
// longest trace and shorter traces hold their final level (LoadTrace
// clamps past the end), so every node still advances every epoch.
TEST(ClusterSim, MismatchedTraceLengthsClampAndRunFullLockstep) {
  std::vector<NodeSpec> specs;
  specs.push_back(fake_spec(LoadTrace::constant(0.4, 10)));
  specs.push_back(fake_spec(LoadTrace::constant(0.5, 30)));
  ClusterConfig config;
  config.seed = 7;
  ClusterSim sim(std::move(specs), config);
  const ClusterResult result = sim.run();
  EXPECT_EQ(result.epochs, 30);
  for (const auto& nr : result.node_results) {
    EXPECT_EQ(nr.epochs, 30) << "node " << nr.node;
    EXPECT_GT(nr.total_completed, 0u) << "node " << nr.node;
  }
}

TEST(ClusterSim, ExplicitEpochCountOverridesTraces) {
  ClusterConfig config;
  config.seed = 7;
  ClusterSim sim(fake_fleet(1, 50), config);
  const ClusterResult result = sim.run(8);
  EXPECT_EQ(result.epochs, 8);
  EXPECT_EQ(result.node_results[0].epochs, 8);
}

// A cap-oblivious static policy under a tight cluster budget: only the
// node governor can keep the node near its cap, and disabling it must
// show up as cluster-level overshoot.
TEST(ClusterSim, GovernorEnforcesTightCapOnStaticPolicy) {
  auto static_specs = [] {
    std::vector<NodeSpec> specs;
    NodeSpec spec;
    spec.ls = find_ls("memcached");
    spec.be = be_catalog()[0];
    spec.trace = LoadTrace::constant(0.6, 40);
    spec.policy = PolicyKind::kStatic;
    specs.push_back(std::move(spec));
    return specs;
  };

  // Probe the node's natural budget and idle floor, then pin the
  // cluster budget at 40% of the dynamic range above idle.
  ClusterConfig probe_config;
  probe_config.seed = 11;
  ClusterSim probe(static_specs(), probe_config);
  const double natural = probe.node(0).budget_w();
  const double idle = probe.node(0).idle_w();
  ASSERT_GT(natural, idle);
  const double tight = idle + 0.4 * (natural - idle);

  ClusterConfig governed;
  governed.seed = 11;
  governed.power_budget_w = tight;
  ClusterSim governed_sim(static_specs(), governed);
  const ClusterResult with_governor = governed_sim.run();

  ClusterConfig ungoverned = governed;
  ungoverned.governor.enabled = false;
  ClusterSim ungoverned_sim(static_specs(), ungoverned);
  const ClusterResult without_governor = ungoverned_sim.run();

  // The static partition wants far more than the cap: the governor must
  // have throttled, and the ungoverned run must overshoot more.
  EXPECT_GT(with_governor.node_results[0].throttled_epochs, 0);
  EXPECT_GT(without_governor.cluster_overshoot_fraction,
            with_governor.cluster_overshoot_fraction);
  EXPECT_LT(with_governor.max_cluster_power_ratio,
            without_governor.max_cluster_power_ratio);
}

TEST(ClusterSim, FleetCountersRollUpIntoClusterRegistry) {
  const int kNodes = 2, kEpochs = 12;
  ClusterConfig config;
  config.seed = 13;
  ClusterSim sim(fake_fleet(kNodes, kEpochs), config);
  const ClusterResult result = sim.run();
  ASSERT_NE(result.telemetry, nullptr);

  const auto snap = result.telemetry->metrics().snapshot();
  std::uint64_t fleet_epochs = 0, cluster_epochs = 0;
  bool found_fleet = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "fleet.run.epochs") {
      fleet_epochs = value;
      found_fleet = true;
    }
    if (name == "cluster.epochs") cluster_epochs = value;
  }
  EXPECT_TRUE(found_fleet);
  EXPECT_EQ(fleet_epochs, static_cast<std::uint64_t>(kNodes * kEpochs));
  EXPECT_EQ(cluster_epochs, static_cast<std::uint64_t>(kEpochs));
}

TEST(ClusterSim, JsonlRollupHasOneLinePerNodePlusCluster) {
  const int kNodes = 2;
  ClusterConfig config;
  config.seed = 17;
  ClusterSim sim(fake_fleet(kNodes, 10), config);
  const ClusterResult result = sim.run();

  std::ostringstream os;
  write_cluster_jsonl(result, os);
  std::istringstream is(os.str());
  std::vector<std::string> lines;
  for (std::string line; std::getline(is, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kNodes) + 1);
  for (int i = 0; i < kNodes; ++i) {
    EXPECT_NE(lines[static_cast<std::size_t>(i)].find("\"run_summary\""),
              std::string::npos);
    EXPECT_NE(lines[static_cast<std::size_t>(i)].find(
                  "\"node\":" + std::to_string(i)),
              std::string::npos);
  }
  EXPECT_NE(lines.back().find("\"cluster\":true"), std::string::npos);
  EXPECT_NE(lines.back().find("\"fleet_qos_guarantee_rate\""),
            std::string::npos);
}

TEST(ClusterSim, SumOfCapsNeverExceedsBudgetDuringRun) {
  // Indirect check through the result: mean caps per node, summed, stay
  // under the cluster budget (the coordinator invariant integrated over
  // the run).
  ClusterConfig config;
  config.seed = 19;
  config.coordinator = CoordinatorKind::kSlackHarvest;
  ClusterSim sim(fake_fleet(3, 25), config);
  const double budget = sim.cluster_budget_w();
  const ClusterResult result = sim.run();
  double mean_cap_sum = 0.0;
  for (const auto& nr : result.node_results) mean_cap_sum += nr.mean_cap_w;
  EXPECT_LE(mean_cap_sum, budget + 1e-6);
}

}  // namespace
}  // namespace sturgeon::cluster
