#include "cluster/coordinator.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

namespace sturgeon::cluster {
namespace {

NodeReport report(double budget, double idle, double cap, double power,
                  double slack, bool qos_met,
                  Liveness liveness = Liveness::kAlive, bool rejoined = false) {
  return NodeReport{budget, idle,    cap,      power,
                    slack,  qos_met, liveness, rejoined, {}};
}

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

// Every strategy must preserve: result size == fleet size, each cap at
// or above the node's idle floor, and sum(caps) <= cluster budget.
void expect_invariants(const std::vector<double>& caps,
                       const std::vector<NodeReport>& reports,
                       double budget) {
  ASSERT_EQ(caps.size(), reports.size());
  for (std::size_t i = 0; i < caps.size(); ++i) {
    EXPECT_GE(caps[i], reports[i].idle_w) << "node " << i;
  }
  EXPECT_LE(sum(caps), budget + 1e-9);
}

TEST(Coordinator, StaticEqualSplitsEvenly) {
  auto coord = make_coordinator(CoordinatorKind::kStaticEqual);
  EXPECT_EQ(coord->name(), "static-equal");
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 100.0, 90.0, 0.05, true),
      report(120.0, 30.0, 100.0, 40.0, 0.40, true),
      report(120.0, 30.0, 100.0, 70.0, 0.20, true),
  };
  const auto caps = coord->assign(300.0, reports);
  expect_invariants(caps, reports, 300.0);
  for (const double c : caps) EXPECT_DOUBLE_EQ(c, 100.0);
}

TEST(Coordinator, RejectsBadInputs) {
  auto coord = make_coordinator(CoordinatorKind::kStaticEqual);
  EXPECT_THROW(coord->assign(300.0, {}), std::invalid_argument);
  EXPECT_THROW(coord->assign(0.0, {report(120, 30, 100, 50, 0.2, true)}),
               std::invalid_argument);
  EXPECT_THROW(coord->assign(-5.0, {report(120, 30, 100, 50, 0.2, true)}),
               std::invalid_argument);
}

TEST(Coordinator, MakeCoordinatorValidatesConfig) {
  CoordinatorConfig bad;
  bad.alpha = -0.1;
  EXPECT_THROW(make_coordinator(CoordinatorKind::kSlackHarvest, bad),
               std::invalid_argument);
  bad = {};
  bad.beta = bad.alpha;  // donor threshold must exceed receiver threshold
  EXPECT_THROW(make_coordinator(CoordinatorKind::kSlackHarvest, bad),
               std::invalid_argument);
  bad = {};
  bad.donate_fraction = 0.0;
  EXPECT_THROW(make_coordinator(CoordinatorKind::kSlackHarvest, bad),
               std::invalid_argument);
  bad = {};
  bad.min_cap_fraction = 1.0;
  EXPECT_THROW(make_coordinator(CoordinatorKind::kSlackHarvest, bad),
               std::invalid_argument);
}

TEST(Coordinator, DemandProportionalFollowsMeasuredPower) {
  auto coord = make_coordinator(CoordinatorKind::kDemandProportional);
  EXPECT_EQ(coord->name(), "demand-proportional");
  // Same hardware, very different demand: the hot node must out-cap the
  // idle one, and both stay inside [idle, budget].
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 100.0, 110.0, 0.02, true),
      report(120.0, 30.0, 100.0, 35.0, 0.50, true),
  };
  const auto caps = coord->assign(180.0, reports);
  expect_invariants(caps, reports, 180.0);
  EXPECT_GT(caps[0], caps[1]);
  EXPECT_LE(caps[0], 120.0 + 1e-9);
}

TEST(Coordinator, DemandProportionalTreatsUnmeasuredAsFullBudget) {
  auto coord = make_coordinator(CoordinatorKind::kDemandProportional);
  // No telemetry yet (never reported): both nodes claim their budget, so
  // equal hardware splits evenly regardless of the garbage power field.
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 0.0, 0.0, 0.0, true, Liveness::kNeverReported),
      report(120.0, 30.0, 0.0, 999.0, 0.0, true, Liveness::kNeverReported),
  };
  const auto caps = coord->assign(180.0, reports);
  expect_invariants(caps, reports, 180.0);
  EXPECT_NEAR(caps[0], caps[1], 1e-9);
}

TEST(Coordinator, SlackHarvestFirstEpochProportionalToBudgets) {
  auto coord = make_coordinator(CoordinatorKind::kSlackHarvest);
  EXPECT_EQ(coord->name(), "slack-harvest");
  // Heterogeneous fleet before any measurement: the bigger machine
  // starts with proportionally more of the cluster budget.
  const std::vector<NodeReport> reports = {
      report(200.0, 40.0, 0.0, 0.0, 0.0, true, Liveness::kNeverReported),
      report(100.0, 25.0, 0.0, 0.0, 0.0, true, Liveness::kNeverReported),
  };
  const auto caps = coord->assign(240.0, reports);
  expect_invariants(caps, reports, 240.0);
  EXPECT_NEAR(caps[0] / caps[1], 2.0, 1e-9);
}

TEST(Coordinator, SlackHarvestMovesWattsFromDonorToStressedNode) {
  CoordinatorConfig config;  // defaults: alpha 0.10, beta 0.20
  auto coord = make_coordinator(CoordinatorKind::kSlackHarvest, config);
  // Node 0: comfortable (big slack, power far under cap) -> donor.
  // Node 1: stressed and pressed against its cap -> receiver.
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 100.0, 60.0, 0.45, true),
      report(120.0, 30.0, 80.0, 79.5, 0.02, false),
  };
  const auto caps = coord->assign(180.0, reports);
  expect_invariants(caps, reports, 180.0);
  EXPECT_LT(caps[0], 100.0);  // donated
  EXPECT_GT(caps[1], 80.0);   // granted
  // Donation floor: never below min_cap_fraction * budget.
  EXPECT_GE(caps[0], config.min_cap_fraction * 120.0 - 1e-9);
}

TEST(Coordinator, SlackHarvestSqueezesViolationUnderCap) {
  auto coord = make_coordinator(CoordinatorKind::kSlackHarvest);
  // Node 0 violates QoS while drawing well under its cap: interference,
  // not watts, is its problem, so its cap is tightened toward measured
  // power instead of being granted more.
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 110.0, 70.0, -0.10, false),
      report(120.0, 30.0, 70.0, 69.9, 0.15, true),
  };
  const auto caps = coord->assign(180.0, reports);
  expect_invariants(caps, reports, 180.0);
  EXPECT_LT(caps[0], 110.0);
}

TEST(Coordinator, SlackHarvestHealthyPressedNodeExpandsGradually) {
  CoordinatorConfig config;
  auto coord = make_coordinator(CoordinatorKind::kSlackHarvest, config);
  // Node 1 is pressed but healthy: it may grow by at most one headroom
  // margin step per epoch, not leap to its full budget.
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 110.0, 50.0, 0.50, true),
      report(120.0, 30.0, 60.0, 59.0, 0.30, true),
  };
  const auto caps = coord->assign(230.0, reports);
  expect_invariants(caps, reports, 230.0);
  EXPECT_GT(caps[1], 60.0);
  EXPECT_LE(caps[1], 60.0 + config.headroom_margin * 120.0 + 1e-9);
}

TEST(Coordinator, SlackHarvestCalmFleetDoesNotRatchetDown) {
  auto coord = make_coordinator(CoordinatorKind::kSlackHarvest);
  // Everyone comfortable, nobody pressed: donations flow straight back,
  // so a calm fleet's caps do not drift toward the floor epoch over
  // epoch.
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 90.0, 50.0, 0.40, true),
      report(120.0, 30.0, 90.0, 55.0, 0.35, true),
  };
  const auto caps = coord->assign(180.0, reports);
  expect_invariants(caps, reports, 180.0);
  for (std::size_t i = 0; i < caps.size(); ++i) {
    EXPECT_GE(caps[i], reports[i].cap_w - 1e-9) << "node " << i;
  }
}

TEST(Coordinator, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(CoordinatorKind::kStaticEqual), "static-equal");
  EXPECT_STREQ(to_string(CoordinatorKind::kDemandProportional),
               "demand-proportional");
  EXPECT_STREQ(to_string(CoordinatorKind::kSlackHarvest), "slack-harvest");
  EXPECT_STREQ(to_string(Liveness::kNeverReported), "never-reported");
  EXPECT_STREQ(to_string(Liveness::kAlive), "alive");
  EXPECT_STREQ(to_string(Liveness::kDead), "dead");
}

TEST(Coordinator, StaticEqualReclaimsDeadNodeWatts) {
  auto coord = make_coordinator(CoordinatorKind::kStaticEqual);
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 100.0, 90.0, 0.05, true),
      report(120.0, 30.0, 100.0, 0.0, 0.0, false, Liveness::kDead),
      report(120.0, 30.0, 100.0, 70.0, 0.20, true),
  };
  const auto caps = coord->assign(300.0, reports);
  expect_invariants(caps, reports, 300.0);
  EXPECT_DOUBLE_EQ(caps[1], 30.0);  // pinned at idle
  // The reclaimed watts split among the living.
  EXPECT_DOUBLE_EQ(caps[0], (300.0 - 30.0) / 2.0);
  EXPECT_DOUBLE_EQ(caps[2], (300.0 - 30.0) / 2.0);
}

TEST(Coordinator, DemandProportionalPinsDeadNodeAtIdle) {
  auto coord = make_coordinator(CoordinatorKind::kDemandProportional);
  // The dead node's stale power_w (it was the hottest) must not hold
  // watts hostage: its cap collapses to idle and the survivors share
  // the rest by demand.
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 100.0, 110.0, 0.02, true, Liveness::kDead),
      report(120.0, 30.0, 100.0, 80.0, 0.10, true),
      report(120.0, 30.0, 100.0, 40.0, 0.40, true),
  };
  const auto caps = coord->assign(240.0, reports);
  expect_invariants(caps, reports, 240.0);
  EXPECT_DOUBLE_EQ(caps[0], 30.0);
  EXPECT_GT(caps[1], caps[2]);  // live demand still ranks
}

TEST(Coordinator, SlackHarvestReclaimsDeadCapIntoPool) {
  auto coord = make_coordinator(CoordinatorKind::kSlackHarvest);
  // Node 0 died holding a 100 W cap; node 1 is pressed and stressed.
  // The harvested watts (above node 0's idle floor) must be grantable.
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 100.0, 0.0, 0.0, false, Liveness::kDead),
      report(120.0, 30.0, 80.0, 79.5, 0.02, false),
  };
  const auto caps = coord->assign(180.0, reports);
  expect_invariants(caps, reports, 180.0);
  EXPECT_DOUBLE_EQ(caps[0], 30.0);
  EXPECT_GT(caps[1], 80.0);  // granted from the reclaimed pool
}

TEST(Coordinator, SlackHarvestRebasesOnRejoin) {
  auto coord = make_coordinator(CoordinatorKind::kSlackHarvest);
  // A rejoining node's cap_w/power_w predate the outage; the strategy
  // must re-base on budget proportions (re-granting the node its share)
  // instead of evolving from the stale caps.
  std::vector<NodeReport> reports = {
      report(120.0, 30.0, 30.0, 50.0, 0.10, true),
      report(120.0, 30.0, 150.0, 60.0, 0.30, true),
  };
  reports[0].rejoined = true;
  const auto caps = coord->assign(240.0, reports);
  expect_invariants(caps, reports, 240.0);
  // Equal budgets: the rebase splits evenly, not 30/150.
  EXPECT_NEAR(caps[0], caps[1], 1e-9);
}

TEST(HeartbeatTracker, ValidatesConstruction) {
  EXPECT_THROW(HeartbeatTracker(0), std::invalid_argument);
  HeartbeatConfig bad;
  bad.dead_after_epochs = 0;
  EXPECT_THROW(HeartbeatTracker(2, bad), std::invalid_argument);
}

TEST(HeartbeatTracker, StartupIsNeverReportedNotDead) {
  HeartbeatTracker tracker(2);
  std::vector<NodeReport> reports(2, report(120, 30, 100, 50, 0.2, true));
  EXPECT_EQ(tracker.update(0, {-1, -1}, reports), 0);
  EXPECT_EQ(reports[0].liveness, Liveness::kNeverReported);
  EXPECT_EQ(reports[1].liveness, Liveness::kNeverReported);
}

TEST(HeartbeatTracker, DeclaresDeadAfterMissedEpochsAndRecordsOutage) {
  HeartbeatConfig config;
  config.dead_after_epochs = 3;
  HeartbeatTracker tracker(2, config);
  std::vector<NodeReport> reports(2, report(120, 30, 100, 50, 0.2, true));

  // Both beat through epoch 4; node 1 goes silent from epoch 5 on.
  EXPECT_EQ(tracker.update(5, {4, 4}, reports), 0);
  EXPECT_EQ(reports[1].liveness, Liveness::kAlive);

  EXPECT_EQ(tracker.update(6, {5, 4}, reports), 0);   // missed 1
  EXPECT_EQ(tracker.update(7, {6, 4}, reports), 0);   // missed 2
  EXPECT_EQ(tracker.update(8, {7, 4}, reports), 1);   // missed 3 -> dead
  EXPECT_EQ(reports[1].liveness, Liveness::kDead);
  EXPECT_FALSE(reports[1].alive());
  EXPECT_EQ(tracker.currently_dead(), 1);

  // Still dead the next epoch; no double-counted outage.
  EXPECT_EQ(tracker.update(9, {8, 4}, reports), 1);
  EXPECT_TRUE(tracker.completed_outages().empty());

  // Node 1 steps at epoch 9 -> rejoin at the epoch-10 split, outage
  // length = declared-dead epoch 8 to rejoin epoch 10.
  EXPECT_EQ(tracker.update(10, {9, 9}, reports), 0);
  EXPECT_EQ(reports[1].liveness, Liveness::kAlive);
  EXPECT_TRUE(reports[1].rejoined);
  ASSERT_EQ(tracker.completed_outages().size(), 1u);
  EXPECT_EQ(tracker.completed_outages()[0], 2);

  // The rejoined flag is one-shot.
  EXPECT_EQ(tracker.update(11, {10, 10}, reports), 0);
  EXPECT_FALSE(reports[1].rejoined);
}

TEST(HeartbeatTracker, LeaseLapseStampsOneShotRejoinWithoutOutage) {
  // Comms mode: a node whose cap lease expired ran autonomously for a
  // while even though it never missed a heartbeat. When its next
  // message arrives the coordinator must re-base it exactly like a
  // dead->alive rejoin (its cap_w predates the lapse), but WITHOUT
  // recording a recovery outage -- the node was never dead.
  HeartbeatTracker tracker(2);
  std::vector<NodeReport> reports(2, report(120, 30, 100, 50, 0.2, true));
  EXPECT_EQ(tracker.update(1, {0, 0}, reports), 0);
  EXPECT_FALSE(reports[0].rejoined);

  EXPECT_EQ(tracker.update(2, {1, 1}, reports, {false, true}), 0);
  EXPECT_EQ(reports[1].liveness, Liveness::kAlive);
  EXPECT_FALSE(reports[0].rejoined);
  EXPECT_TRUE(reports[1].rejoined);
  EXPECT_TRUE(tracker.completed_outages().empty());

  // One-shot: the flag does not leak into the next epoch (a stale
  // slack-harvest grant must not be re-based twice).
  EXPECT_EQ(tracker.update(3, {2, 2}, reports), 0);
  EXPECT_FALSE(reports[1].rejoined);

  // A node mid-death is NOT stamped rejoined by a lapse flag: the
  // dead->alive transition owns that stamp when the node comes back.
  HeartbeatConfig config;
  config.dead_after_epochs = 2;
  HeartbeatTracker strict(1, config);
  std::vector<NodeReport> one(1, report(120, 30, 100, 50, 0.2, true));
  EXPECT_EQ(strict.update(0, {0}, one), 0);
  EXPECT_EQ(strict.update(3, {0}, one, {true}), 1);  // silent too long
  EXPECT_TRUE(one[0].dead());
  EXPECT_FALSE(one[0].rejoined);
}

TEST(HeartbeatTracker, ResetForgetsStateAndOutages) {
  HeartbeatTracker tracker(1);
  std::vector<NodeReport> reports(1, report(120, 30, 100, 50, 0.2, true));
  tracker.update(0, {-1}, reports);
  tracker.update(4, {0}, reports);  // long silent -> dead
  EXPECT_EQ(tracker.currently_dead(), 1);
  tracker.reset();
  EXPECT_EQ(tracker.currently_dead(), 0);
  EXPECT_TRUE(tracker.completed_outages().empty());
  tracker.update(0, {-1}, reports);
  EXPECT_EQ(reports[0].liveness, Liveness::kNeverReported);
}

}  // namespace
}  // namespace sturgeon::cluster
