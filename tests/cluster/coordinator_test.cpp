#include "cluster/coordinator.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

namespace sturgeon::cluster {
namespace {

NodeReport report(double budget, double idle, double cap, double power,
                  double slack, bool qos_met, bool valid = true) {
  return NodeReport{budget, idle, cap, power, slack, qos_met, valid};
}

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

// Every strategy must preserve: result size == fleet size, each cap at
// or above the node's idle floor, and sum(caps) <= cluster budget.
void expect_invariants(const std::vector<double>& caps,
                       const std::vector<NodeReport>& reports,
                       double budget) {
  ASSERT_EQ(caps.size(), reports.size());
  for (std::size_t i = 0; i < caps.size(); ++i) {
    EXPECT_GE(caps[i], reports[i].idle_w) << "node " << i;
  }
  EXPECT_LE(sum(caps), budget + 1e-9);
}

TEST(Coordinator, StaticEqualSplitsEvenly) {
  auto coord = make_coordinator(CoordinatorKind::kStaticEqual);
  EXPECT_EQ(coord->name(), "static-equal");
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 100.0, 90.0, 0.05, true),
      report(120.0, 30.0, 100.0, 40.0, 0.40, true),
      report(120.0, 30.0, 100.0, 70.0, 0.20, true),
  };
  const auto caps = coord->assign(300.0, reports);
  expect_invariants(caps, reports, 300.0);
  for (const double c : caps) EXPECT_DOUBLE_EQ(c, 100.0);
}

TEST(Coordinator, RejectsBadInputs) {
  auto coord = make_coordinator(CoordinatorKind::kStaticEqual);
  EXPECT_THROW(coord->assign(300.0, {}), std::invalid_argument);
  EXPECT_THROW(coord->assign(0.0, {report(120, 30, 100, 50, 0.2, true)}),
               std::invalid_argument);
  EXPECT_THROW(coord->assign(-5.0, {report(120, 30, 100, 50, 0.2, true)}),
               std::invalid_argument);
}

TEST(Coordinator, MakeCoordinatorValidatesConfig) {
  CoordinatorConfig bad;
  bad.alpha = -0.1;
  EXPECT_THROW(make_coordinator(CoordinatorKind::kSlackHarvest, bad),
               std::invalid_argument);
  bad = {};
  bad.beta = bad.alpha;  // donor threshold must exceed receiver threshold
  EXPECT_THROW(make_coordinator(CoordinatorKind::kSlackHarvest, bad),
               std::invalid_argument);
  bad = {};
  bad.donate_fraction = 0.0;
  EXPECT_THROW(make_coordinator(CoordinatorKind::kSlackHarvest, bad),
               std::invalid_argument);
  bad = {};
  bad.min_cap_fraction = 1.0;
  EXPECT_THROW(make_coordinator(CoordinatorKind::kSlackHarvest, bad),
               std::invalid_argument);
}

TEST(Coordinator, DemandProportionalFollowsMeasuredPower) {
  auto coord = make_coordinator(CoordinatorKind::kDemandProportional);
  EXPECT_EQ(coord->name(), "demand-proportional");
  // Same hardware, very different demand: the hot node must out-cap the
  // idle one, and both stay inside [idle, budget].
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 100.0, 110.0, 0.02, true),
      report(120.0, 30.0, 100.0, 35.0, 0.50, true),
  };
  const auto caps = coord->assign(180.0, reports);
  expect_invariants(caps, reports, 180.0);
  EXPECT_GT(caps[0], caps[1]);
  EXPECT_LE(caps[0], 120.0 + 1e-9);
}

TEST(Coordinator, DemandProportionalTreatsUnmeasuredAsFullBudget) {
  auto coord = make_coordinator(CoordinatorKind::kDemandProportional);
  // No telemetry yet (valid=false): both nodes claim their budget, so
  // equal hardware splits evenly regardless of the garbage power field.
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 0.0, 0.0, 0.0, true, false),
      report(120.0, 30.0, 0.0, 999.0, 0.0, true, false),
  };
  const auto caps = coord->assign(180.0, reports);
  expect_invariants(caps, reports, 180.0);
  EXPECT_NEAR(caps[0], caps[1], 1e-9);
}

TEST(Coordinator, SlackHarvestFirstEpochProportionalToBudgets) {
  auto coord = make_coordinator(CoordinatorKind::kSlackHarvest);
  EXPECT_EQ(coord->name(), "slack-harvest");
  // Heterogeneous fleet before any measurement: the bigger machine
  // starts with proportionally more of the cluster budget.
  const std::vector<NodeReport> reports = {
      report(200.0, 40.0, 0.0, 0.0, 0.0, true, false),
      report(100.0, 25.0, 0.0, 0.0, 0.0, true, false),
  };
  const auto caps = coord->assign(240.0, reports);
  expect_invariants(caps, reports, 240.0);
  EXPECT_NEAR(caps[0] / caps[1], 2.0, 1e-9);
}

TEST(Coordinator, SlackHarvestMovesWattsFromDonorToStressedNode) {
  CoordinatorConfig config;  // defaults: alpha 0.10, beta 0.20
  auto coord = make_coordinator(CoordinatorKind::kSlackHarvest, config);
  // Node 0: comfortable (big slack, power far under cap) -> donor.
  // Node 1: stressed and pressed against its cap -> receiver.
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 100.0, 60.0, 0.45, true),
      report(120.0, 30.0, 80.0, 79.5, 0.02, false),
  };
  const auto caps = coord->assign(180.0, reports);
  expect_invariants(caps, reports, 180.0);
  EXPECT_LT(caps[0], 100.0);  // donated
  EXPECT_GT(caps[1], 80.0);   // granted
  // Donation floor: never below min_cap_fraction * budget.
  EXPECT_GE(caps[0], config.min_cap_fraction * 120.0 - 1e-9);
}

TEST(Coordinator, SlackHarvestSqueezesViolationUnderCap) {
  auto coord = make_coordinator(CoordinatorKind::kSlackHarvest);
  // Node 0 violates QoS while drawing well under its cap: interference,
  // not watts, is its problem, so its cap is tightened toward measured
  // power instead of being granted more.
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 110.0, 70.0, -0.10, false),
      report(120.0, 30.0, 70.0, 69.9, 0.15, true),
  };
  const auto caps = coord->assign(180.0, reports);
  expect_invariants(caps, reports, 180.0);
  EXPECT_LT(caps[0], 110.0);
}

TEST(Coordinator, SlackHarvestHealthyPressedNodeExpandsGradually) {
  CoordinatorConfig config;
  auto coord = make_coordinator(CoordinatorKind::kSlackHarvest, config);
  // Node 1 is pressed but healthy: it may grow by at most one headroom
  // margin step per epoch, not leap to its full budget.
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 110.0, 50.0, 0.50, true),
      report(120.0, 30.0, 60.0, 59.0, 0.30, true),
  };
  const auto caps = coord->assign(230.0, reports);
  expect_invariants(caps, reports, 230.0);
  EXPECT_GT(caps[1], 60.0);
  EXPECT_LE(caps[1], 60.0 + config.headroom_margin * 120.0 + 1e-9);
}

TEST(Coordinator, SlackHarvestCalmFleetDoesNotRatchetDown) {
  auto coord = make_coordinator(CoordinatorKind::kSlackHarvest);
  // Everyone comfortable, nobody pressed: donations flow straight back,
  // so a calm fleet's caps do not drift toward the floor epoch over
  // epoch.
  const std::vector<NodeReport> reports = {
      report(120.0, 30.0, 90.0, 50.0, 0.40, true),
      report(120.0, 30.0, 90.0, 55.0, 0.35, true),
  };
  const auto caps = coord->assign(180.0, reports);
  expect_invariants(caps, reports, 180.0);
  for (std::size_t i = 0; i < caps.size(); ++i) {
    EXPECT_GE(caps[i], reports[i].cap_w - 1e-9) << "node " << i;
  }
}

TEST(Coordinator, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(CoordinatorKind::kStaticEqual), "static-equal");
  EXPECT_STREQ(to_string(CoordinatorKind::kDemandProportional),
               "demand-proportional");
  EXPECT_STREQ(to_string(CoordinatorKind::kSlackHarvest), "slack-harvest");
}

}  // namespace
}  // namespace sturgeon::cluster
