// MessageChannel contract: reliable channels deliver same-epoch FIFO
// exactly once; faulted links perturb deterministically per seed; the
// accounting identity sent == delivered + dropped + in_flight holds
// through any mix of faults (duplicates tracked separately).
#include "comms/channel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace sturgeon::comms {
namespace {

Message report_msg(int node, std::uint64_t seq) {
  Message m;
  m.kind = MsgKind::kNodeReport;
  m.report.node = node;
  m.report.seq = seq;
  return m;
}

Message grant_msg(std::uint64_t seq, double cap_w) {
  Message m;
  m.kind = MsgKind::kCapGrant;
  m.grant = CapGrant{seq, cap_w, 10, 0};
  return m;
}

TEST(MessageChannel, ReliableDeliversSameEpochInFifoOrder) {
  MessageChannel ch(fault::NetworkFaultConfig{}, 1, 2);
  ASSERT_TRUE(ch.reliable());
  ch.send_to_coord(0, report_msg(0, 1), 5);
  ch.send_to_coord(1, report_msg(1, 1), 5);
  ch.send_to_coord(0, report_msg(0, 2), 5);

  // Nothing receivable before the send epoch.
  EXPECT_TRUE(ch.recv_coord(4).empty());
  const std::vector<Message> got = ch.recv_coord(5);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].report.node, 0);
  EXPECT_EQ(got[0].report.seq, 1u);
  EXPECT_EQ(got[1].report.node, 1);
  EXPECT_EQ(got[2].report.seq, 2u);
  // Drained exactly once.
  EXPECT_TRUE(ch.recv_coord(5).empty());
  EXPECT_EQ(ch.stats().sent, 3u);
  EXPECT_EQ(ch.stats().delivered, 3u);
  EXPECT_EQ(ch.stats().dropped, 0u);
  EXPECT_EQ(ch.stats().in_flight(), 0u);
}

TEST(MessageChannel, NodeQueuesAreIndependent) {
  MessageChannel ch(fault::NetworkFaultConfig{}, 1, 2);
  ch.send_to_node(0, grant_msg(1, 50.0), 0);
  ch.send_to_node(1, grant_msg(1, 60.0), 0);
  const std::vector<Message> a = ch.recv_node(0, 0);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].grant.cap_w, 50.0);
  const std::vector<Message> b = ch.recv_node(1, 0);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].grant.cap_w, 60.0);
}

TEST(MessageChannel, GrantStatsCountOnlyDownlinkGrants) {
  MessageChannel ch(fault::NetworkFaultConfig{}, 1, 1);
  ch.send_to_node(0, grant_msg(1, 50.0), 0);
  ch.send_to_coord(0, report_msg(0, 1), 0);
  EXPECT_EQ(ch.stats().sent, 2u);
  EXPECT_EQ(ch.grant_stats().sent, 1u);
  (void)ch.recv_node(0, 0);
  (void)ch.recv_coord(0);
  EXPECT_EQ(ch.grant_stats().delivered, 1u);
  EXPECT_EQ(ch.grant_stats().in_flight(), 0u);
}

TEST(MessageChannel, DropsAreCountedAndNeverDelivered) {
  fault::NetworkFaultConfig net;
  net.drop_p = 1.0;
  MessageChannel ch(net, 7, 1);
  ASSERT_FALSE(ch.reliable());
  for (int t = 0; t < 10; ++t) ch.send_to_coord(0, report_msg(0, t + 1), t);
  EXPECT_TRUE(ch.recv_coord(100).empty());
  EXPECT_EQ(ch.stats().sent, 10u);
  EXPECT_EQ(ch.stats().dropped, 10u);
  EXPECT_EQ(ch.stats().delivered, 0u);
  EXPECT_EQ(ch.stats().in_flight(), 0u);
}

TEST(MessageChannel, DelayedMessagesArriveWithinBound) {
  fault::NetworkFaultConfig net;
  net.delay_p = 1.0;
  net.max_delay_epochs = 3;
  MessageChannel ch(net, 7, 1);
  ch.send_to_coord(0, report_msg(0, 1), 0);
  EXPECT_TRUE(ch.recv_coord(0).empty());  // delayed past the send epoch
  const std::vector<Message> got = ch.recv_coord(3);  // <= max delay
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(ch.stats().delayed, 1u);
  EXPECT_EQ(ch.stats().delivered, 1u);
}

TEST(MessageChannel, DuplicateDeliversTwiceButCountsOnePrimary) {
  fault::NetworkFaultConfig net;
  net.duplicate_p = 1.0;
  MessageChannel ch(net, 7, 1);
  ch.send_to_node(0, grant_msg(3, 40.0), 2);
  const std::vector<Message> first = ch.recv_node(0, 2);
  ASSERT_EQ(first.size(), 1u);
  // The copy lands in a LATER batch -- the idempotence-interesting case.
  const std::vector<Message> second = ch.recv_node(0, 3);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].grant.seq, 3u);
  EXPECT_EQ(ch.stats().sent, 1u);
  EXPECT_EQ(ch.stats().delivered, 1u);  // primary only
  EXPECT_EQ(ch.stats().duplicated, 1u);
  EXPECT_EQ(ch.stats().in_flight(), 0u);
}

TEST(MessageChannel, PartitionSilencesTheWindowThenHeals) {
  fault::NetworkFaultConfig net;
  net.partition_start_epoch = 5;
  net.partition_epochs = 3;  // epochs 5,6,7 dark
  MessageChannel ch(net, 7, 1);
  ch.send_to_coord(0, report_msg(0, 1), 4);
  ch.send_to_coord(0, report_msg(0, 2), 5);
  ch.send_to_coord(0, report_msg(0, 3), 7);
  ch.send_to_coord(0, report_msg(0, 4), 8);
  std::vector<Message> got = ch.recv_coord(100);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].report.seq, 1u);
  EXPECT_EQ(got[1].report.seq, 4u);
  EXPECT_EQ(ch.stats().dropped, 2u);
}

TEST(MessageChannel, PartitionCanTargetOneNodesLinks) {
  fault::NetworkFaultConfig net;
  net.partition_start_epoch = 0;
  net.partition_epochs = 10;
  net.partition_node = 1;
  MessageChannel ch(net, 7, 2);
  ch.send_to_coord(0, report_msg(0, 1), 3);
  ch.send_to_coord(1, report_msg(1, 1), 3);
  const std::vector<Message> got = ch.recv_coord(3);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].report.node, 0);
}

TEST(MessageChannel, AccountingIdentityHoldsUnderMixedChaos) {
  fault::NetworkFaultConfig net;
  net.drop_p = 0.2;
  net.delay_p = 0.3;
  net.max_delay_epochs = 4;
  net.duplicate_p = 0.2;
  net.reorder_p = 0.3;
  MessageChannel ch(net, 42, 3);
  std::uint64_t received = 0, dup_received = 0;
  std::uint64_t seq = 0;
  for (int t = 0; t < 200; ++t) {
    for (int node = 0; node < 3; ++node) {
      ch.send_to_coord(node, report_msg(node, ++seq), t);
      ch.send_to_node(node, grant_msg(seq, 50.0), t);
    }
    received += ch.recv_coord(t).size();
    for (int node = 0; node < 3; ++node) {
      received += ch.recv_node(node, t).size();
    }
  }
  const ChannelStats& s = ch.stats();
  EXPECT_EQ(s.sent, 1200u);
  EXPECT_GT(s.dropped, 0u);
  EXPECT_GT(s.delayed, 0u);
  EXPECT_GT(s.duplicated, 0u);
  EXPECT_EQ(s.sent, s.delivered + s.dropped + s.in_flight());
  // Received counts primaries + duplicate copies.
  dup_received = received - s.delivered;
  EXPECT_LE(dup_received, s.duplicated);
  // Drain the tail: everything in flight is eventually deliverable.
  received = ch.recv_coord(1000).size();
  for (int node = 0; node < 3; ++node) {
    received += ch.recv_node(node, 1000).size();
  }
  EXPECT_EQ(ch.stats().in_flight(), 0u);
  EXPECT_EQ(ch.stats().sent,
            ch.stats().delivered + ch.stats().dropped);
}

TEST(MessageChannel, ChaosScheduleIsDeterministicPerSeed) {
  fault::NetworkFaultConfig net;
  net.drop_p = 0.3;
  net.delay_p = 0.3;
  net.duplicate_p = 0.2;
  net.reorder_p = 0.4;
  const auto run = [&net](std::uint64_t seed) {
    MessageChannel ch(net, seed, 2);
    std::vector<std::uint64_t> order;
    std::uint64_t seq = 0;
    for (int t = 0; t < 50; ++t) {
      for (int node = 0; node < 2; ++node) {
        ch.send_to_coord(node, report_msg(node, ++seq), t);
      }
      for (const Message& m : ch.recv_coord(t)) order.push_back(m.report.seq);
    }
    return order;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

}  // namespace
}  // namespace sturgeon::comms
