// End-to-end comms acceptance (ctest label: comms): the coordinator and
// nodes talk ONLY through the MessageChannel.
//
//  - Zero-fault channel: bit-identical to the direct-call paths, for
//    every coordinator strategy, in both engines (lockstep ClusterSim
//    and the event-driven FleetSim).
//  - Chaos-net: 20% drop + reorder + a 50-epoch full coordinator
//    partition. The run must complete (the per-epoch STURGEON_CHECK on
//    the TRUE cap sum is live the whole time), keep fleet QoS within 5
//    points of the fault-free twin, and re-converge within p95 <= 10
//    epochs of heal.
//  - Determinism across 1/2/8 worker threads under chaos-net.
//  - Duplicate deliveries are idempotent end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "../core/fake_models.h"
#include "cluster/cluster.h"
#include "core/controller.h"
#include "fleet/fleet.h"
#include "workloads/app_profile.h"

namespace sturgeon::cluster {
namespace {

NodeSpec fake_spec(const LoadTrace& trace) {
  NodeSpec spec;
  spec.ls = find_ls("memcached");
  spec.be = be_catalog()[0];
  spec.trace = trace;
  const double qos_ms = spec.ls.qos_target_ms;
  spec.make_policy = [qos_ms](const sim::SimulatedServer& server) {
    return std::make_unique<core::SturgeonController>(
        core::testing::fake_predictor(server.machine()), qos_ms,
        server.power_budget_w());
  };
  return spec;
}

std::vector<NodeSpec> fake_fleet(int n, int duration_s) {
  std::vector<NodeSpec> specs;
  for (int i = 0; i < n; ++i) {
    const double load = 0.3 + 0.1 * (i % 5);
    specs.push_back(fake_spec(LoadTrace::constant(load, duration_s)));
  }
  return specs;
}

/// The acceptance schedule from the issue: lossy, reordering links and
/// one long window where the coordinator is unreachable from everyone.
comms::CommsConfig chaos_net(int partition_start, int partition_epochs) {
  comms::CommsConfig c;
  c.enabled = true;
  c.lease_epochs = 8;
  c.renew_ahead_epochs = 2;
  c.retry_max_epochs = 4;  // snappy re-offer cadence after heal
  c.network.drop_p = 0.20;
  c.network.reorder_p = 0.50;
  c.network.partition_start_epoch = partition_start;
  c.network.partition_epochs = partition_epochs;
  c.network.partition_node = -1;  // every link: coordinator unreachable
  return c;
}

ClusterResult run_cluster(CoordinatorKind kind, const comms::CommsConfig& comms,
                          std::uint64_t seed, std::size_t threads, int epochs,
                          int nodes = 4) {
  ClusterConfig config;
  config.seed = seed;
  config.threads = threads;
  config.coordinator = kind;
  config.comms = comms;
  ClusterSim sim(fake_fleet(nodes, epochs), config);
  return sim.run();
}

void expect_behavior_identical(const ClusterResult& a, const ClusterResult& b) {
  EXPECT_EQ(a.fleet_qos_guarantee_rate, b.fleet_qos_guarantee_rate);
  EXPECT_EQ(a.aggregate_be_throughput, b.aggregate_be_throughput);
  EXPECT_EQ(a.cluster_overshoot_fraction, b.cluster_overshoot_fraction);
  EXPECT_EQ(a.max_cluster_power_ratio, b.max_cluster_power_ratio);
  EXPECT_EQ(a.mean_cluster_power_w, b.mean_cluster_power_w);
  EXPECT_EQ(a.max_cap_sum_ratio, b.max_cap_sum_ratio);
  EXPECT_EQ(a.dead_node_epochs, b.dead_node_epochs);
  ASSERT_EQ(a.node_results.size(), b.node_results.size());
  for (std::size_t i = 0; i < a.node_results.size(); ++i) {
    const NodeResult& x = a.node_results[i];
    const NodeResult& y = b.node_results[i];
    EXPECT_EQ(x.qos_guarantee_rate, y.qos_guarantee_rate) << "node " << i;
    EXPECT_EQ(x.mean_be_throughput_norm, y.mean_be_throughput_norm)
        << "node " << i;
    EXPECT_EQ(x.mean_cap_w, y.mean_cap_w) << "node " << i;
    EXPECT_EQ(x.max_power_ratio, y.max_power_ratio) << "node " << i;
    EXPECT_EQ(x.throttled_epochs, y.throttled_epochs) << "node " << i;
  }
}

TEST(CommsNet, ZeroFaultChannelBitIdenticalToDirect) {
  for (const auto kind :
       {CoordinatorKind::kStaticEqual, CoordinatorKind::kDemandProportional,
        CoordinatorKind::kSlackHarvest}) {
    const ClusterResult direct =
        run_cluster(kind, comms::CommsConfig{}, 31, 2, 30);
    comms::CommsConfig reliable;
    reliable.enabled = true;  // channel on, zero faults: reliable mode
    const ClusterResult via_channel = run_cluster(kind, reliable, 31, 2, 30);
    expect_behavior_identical(direct, via_channel);
    // The channel really carried the run: a grant per node per epoch,
    // nothing lost, nothing pending.
    EXPECT_EQ(via_channel.comms_grants_sent, 4u * 30u);
    EXPECT_EQ(via_channel.comms_grants_dropped, 0u);
    EXPECT_EQ(via_channel.comms_grants_in_flight, 0u);
    EXPECT_EQ(via_channel.comms_autonomy_epochs, 0u);
  }
}

TEST(CommsNet, FleetEventsZeroFaultBitIdenticalToDirect) {
  const auto run_fleet = [](bool comms_on) {
    fleet::FleetConfig fc;
    fc.cluster.seed = 47;
    fc.cluster.threads = 2;
    fc.cluster.coordinator = CoordinatorKind::kSlackHarvest;
    fc.cluster.comms.enabled = comms_on;
    fc.quiescence.enabled = true;
    fc.quiescence.min_sleep_epochs = 1;
    fc.quiescence.max_sleep_epochs = 8;
    fc.delta.rebalance_period = 10;
    fleet::FleetSim sim(fake_fleet(4, 40), fc);
    return sim.run();
  };
  const fleet::FleetResult direct = run_fleet(false);
  const fleet::FleetResult via_channel = run_fleet(true);
  expect_behavior_identical(direct.cluster, via_channel.cluster);
  EXPECT_EQ(direct.total_skipped_epochs, via_channel.total_skipped_epochs);
  EXPECT_EQ(direct.total_wakes, via_channel.total_wakes);
  EXPECT_EQ(direct.rebalances, via_channel.rebalances);
  EXPECT_EQ(direct.cap_revisions, via_channel.cap_revisions);
  EXPECT_GT(via_channel.cluster.comms_sent, 0u);
}

TEST(CommsNet, ChaosNetKeepsBudgetSafetyQoSAndReconverges) {
  const int kNodes = 5, kEpochs = 120;
  const int kPartitionStart = 30, kPartitionEpochs = 50;
  const ClusterResult clean =
      run_cluster(CoordinatorKind::kSlackHarvest, comms::CommsConfig{}, 13, 2,
                  kEpochs, kNodes);
  const ClusterResult chaos = run_cluster(
      CoordinatorKind::kSlackHarvest,
      chaos_net(kPartitionStart, kPartitionEpochs), 13, 2, kEpochs, kNodes);

  // The network really hurt: drops happened, leases lapsed, every node
  // spent the partition on its autonomous fallback cap.
  EXPECT_GT(chaos.comms_dropped, 0u);
  EXPECT_GT(chaos.comms_lease_expiries, 0u);
  EXPECT_GE(chaos.comms_autonomy_epochs,
            static_cast<std::uint64_t>(kNodes) *
                static_cast<std::uint64_t>(kPartitionEpochs - 10));

  // Safety: every epoch's TRUE cap sum passed the STURGEON_CHECK (the
  // run completing proves it); the recorded max confirms the margin.
  EXPECT_LE(chaos.max_cap_sum_ratio, 1.0 + 1e-9);

  // QoS within 5 points of the fault-free twin: the autonomous
  // fallback keeps nodes productive while the coordinator is dark.
  EXPECT_GE(chaos.fleet_qos_guarantee_rate,
            clean.fleet_qos_guarantee_rate - 0.05);

  // Re-convergence: after the partition heals at epoch 80, every node
  // is back on a live lease within p95 <= 10 epochs.
  const int heal = kPartitionStart + kPartitionEpochs;
  std::vector<int> reconverge;
  for (const NodeResult& nr : chaos.node_results) {
    ASSERT_GE(nr.autonomy_epochs, 1u);
    reconverge.push_back(nr.last_autonomy_epoch + 1 - heal);
  }
  std::sort(reconverge.begin(), reconverge.end());
  const std::size_t p95 =
      (reconverge.size() * 95 + 99) / 100;  // ceil(0.95 n), 1-based
  EXPECT_LE(reconverge[std::min(p95, reconverge.size()) - 1], 10)
      << "slowest node re-converged " << reconverge.back()
      << " epochs after heal";

  // The grant identity the trace validator enforces.
  EXPECT_EQ(chaos.comms_grants_sent,
            chaos.comms_grants_delivered + chaos.comms_grants_dropped +
                chaos.comms_grants_in_flight);
}

TEST(CommsNet, ChaosNetDeterministicAcrossThreadCounts) {
  const comms::CommsConfig net = chaos_net(20, 30);
  const ClusterResult a =
      run_cluster(CoordinatorKind::kSlackHarvest, net, 29, 1, 80);
  const ClusterResult b =
      run_cluster(CoordinatorKind::kSlackHarvest, net, 29, 2, 80);
  const ClusterResult c =
      run_cluster(CoordinatorKind::kSlackHarvest, net, 29, 8, 80);
  for (const ClusterResult* r : {&b, &c}) {
    expect_behavior_identical(a, *r);
    EXPECT_EQ(a.comms_sent, r->comms_sent);
    EXPECT_EQ(a.comms_dropped, r->comms_dropped);
    EXPECT_EQ(a.comms_duplicated, r->comms_duplicated);
    EXPECT_EQ(a.comms_lease_expiries, r->comms_lease_expiries);
    EXPECT_EQ(a.comms_autonomy_epochs, r->comms_autonomy_epochs);
  }
}

TEST(CommsNet, FleetEventsChaosNetStaysSafeAndDeterministic) {
  const auto run_fleet = [](std::size_t threads) {
    fleet::FleetConfig fc;
    fc.cluster.seed = 53;
    fc.cluster.threads = threads;
    fc.cluster.coordinator = CoordinatorKind::kSlackHarvest;
    fc.cluster.comms = chaos_net(20, 25);
    fc.quiescence.enabled = true;
    fc.quiescence.min_sleep_epochs = 1;
    fc.quiescence.max_sleep_epochs = 8;
    fc.churn.enabled = true;
    fc.churn.arrival_rate_per_epoch = 0.4;
    fc.churn.mean_size_norm_s = 2.0;
    fc.churn.slots_per_node = 2;
    fc.delta.rebalance_period = 10;
    fleet::FleetSim sim(fake_fleet(4, 70), fc);
    return sim.run();
  };
  const fleet::FleetResult a = run_fleet(1);
  const fleet::FleetResult b = run_fleet(2);
  const fleet::FleetResult c = run_fleet(8);
  EXPECT_LE(a.cluster.max_cap_sum_ratio, 1.0 + 1e-9);
  EXPECT_GT(a.cluster.comms_dropped, 0u);
  EXPECT_GT(a.cluster.comms_autonomy_epochs, 0u);
  for (const fleet::FleetResult* r : {&b, &c}) {
    expect_behavior_identical(a.cluster, r->cluster);
    EXPECT_EQ(a.total_skipped_epochs, r->total_skipped_epochs);
    EXPECT_EQ(a.total_wakes, r->total_wakes);
    EXPECT_EQ(a.events_processed, r->events_processed);
    EXPECT_EQ(a.cluster.comms_sent, r->cluster.comms_sent);
    EXPECT_EQ(a.cluster.comms_dropped, r->cluster.comms_dropped);
  }
}

TEST(CommsNet, DuplicateDeliveriesAreIdempotentEndToEnd) {
  // Same seed, same link RNG draw sequence (each send draws exactly the
  // same 5 values per message): the only difference between these two
  // configs is that every message ALSO delivers a duplicate copy. If
  // dup handling is idempotent everywhere (grants at the LeaseClient,
  // reports/acks/heartbeats at the fabric), behavior is bit-identical.
  comms::CommsConfig base;
  base.enabled = true;
  base.network.duplicate_p = 1e-12;  // lossy path, but no dup ever fires
  comms::CommsConfig dup = base;
  dup.network.duplicate_p = 1.0;
  const ClusterResult without =
      run_cluster(CoordinatorKind::kSlackHarvest, base, 37, 2, 40);
  const ClusterResult with_dups =
      run_cluster(CoordinatorKind::kSlackHarvest, dup, 37, 2, 40);
  EXPECT_EQ(with_dups.comms_duplicated, with_dups.comms_sent);
  EXPECT_EQ(without.comms_duplicated, 0u);
  expect_behavior_identical(without, with_dups);
  EXPECT_EQ(without.comms_grants_delivered, with_dups.comms_grants_delivered);
}

}  // namespace
}  // namespace sturgeon::cluster
