// Lease state machine: the node-side LeaseClient (adopt-newest,
// fall-back-on-expiry) and the coordinator-side LeaseLedger whose
// reserve bound is the whole safety argument -- for every future epoch,
// sum over nodes of the worst cap the node could legitimately be
// running must stay within the budget, no matter which in-flight
// grants arrive and which acks are lost.
#include "comms/lease.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace sturgeon::comms {
namespace {

CapGrant grant(std::uint64_t seq, double cap_w, int expiry, int at = 0) {
  return CapGrant{seq, cap_w, expiry, at};
}

TEST(AutonomousSplit, EqualSharesWhenIdleIsLow) {
  const std::vector<double> split = autonomous_split(120.0, {10.0, 10.0, 10.0});
  ASSERT_EQ(split.size(), 3u);
  for (const double s : split) EXPECT_DOUBLE_EQ(s, 40.0);
}

TEST(AutonomousSplit, FloorsAtIdleAndRedistributes) {
  // Equal share would be 30 each, but node 0 idles at 50: it is pinned
  // there and the others split the remainder.
  const std::vector<double> split = autonomous_split(90.0, {50.0, 5.0, 5.0});
  ASSERT_EQ(split.size(), 3u);
  EXPECT_DOUBLE_EQ(split[0], 50.0);
  EXPECT_DOUBLE_EQ(split[1], 20.0);
  EXPECT_DOUBLE_EQ(split[2], 20.0);
  double sum = 0.0;
  for (const double s : split) sum += s;
  EXPECT_LE(sum, 90.0 + 1e-9);
}

TEST(LeaseClient, AdoptsOnlyAdvancingSequences) {
  LeaseClient client(25.0);
  client.on_grant(grant(2, 60.0, 10));
  EXPECT_EQ(client.ack_seq(), 2u);
  EXPECT_DOUBLE_EQ(client.cap(0), 60.0);
  // A duplicate or stale delivery must be a no-op (idempotence).
  client.on_grant(grant(2, 60.0, 10));
  client.on_grant(grant(1, 99.0, 50));
  EXPECT_EQ(client.ack_seq(), 2u);
  EXPECT_DOUBLE_EQ(client.cap(1), 60.0);
  client.on_grant(grant(3, 70.0, 12));
  EXPECT_DOUBLE_EQ(client.cap(2), 70.0);
}

TEST(LeaseClient, FallsBackToAutonomousOnExpiry) {
  LeaseClient client(25.0);
  EXPECT_FALSE(client.leased(0));
  EXPECT_DOUBLE_EQ(client.cap(0), 25.0);  // never leased: autonomous
  client.on_grant(grant(1, 60.0, 5));
  EXPECT_DOUBLE_EQ(client.cap(4), 60.0);  // covered through expiry-1
  EXPECT_DOUBLE_EQ(client.cap(5), 25.0);  // lapsed
  EXPECT_DOUBLE_EQ(client.cap(6), 25.0);
  EXPECT_EQ(client.expiries(), 1u);       // one lapse transition...
  EXPECT_EQ(client.autonomy_epochs(), 3u);  // ...but 3 autonomous epochs
  EXPECT_EQ(client.last_autonomy_epoch(), 6);
  // A late renewal re-covers the node (every adoption counts).
  client.on_grant(grant(2, 55.0, 12));
  EXPECT_DOUBLE_EQ(client.cap(7), 55.0);
  EXPECT_EQ(client.renewals(), 2u);
}

TEST(LeaseLedger, ReserveCoversUnackedGrantsUntilAcked) {
  LeaseLedger ledger({20.0, 20.0}, 100.0);
  // Node 0 has no lease: its reserve is the autonomous fallback.
  EXPECT_DOUBLE_EQ(ledger.reserve(0, 0), 20.0);
  const CapGrant g = grant(ledger.next_seq(0), 70.0, 10, 0);
  ledger.record_grant(0, g);
  // Unacked: the node might or might not hold 70 -- reserve the max.
  EXPECT_DOUBLE_EQ(ledger.reserve(0, 5), 70.0);
  // Past expiry the grant dies but the fallback scenario persists.
  EXPECT_DOUBLE_EQ(ledger.reserve(0, 10), 20.0);
  EXPECT_TRUE(ledger.on_ack(0, g.seq));
  // Acked: the node holds exactly 70 until expiry, fallback after.
  EXPECT_DOUBLE_EQ(ledger.reserve(0, 9), 70.0);
  EXPECT_DOUBLE_EQ(ledger.reserve(0, 10), 20.0);
  EXPECT_FALSE(ledger.on_ack(0, g.seq));  // replayed ack: no progress
}

TEST(LeaseLedger, MaxGrantNeverOversubscribesAnyFutureEpoch) {
  LeaseLedger ledger({20.0, 20.0}, 100.0);
  const CapGrant a = grant(ledger.next_seq(0), 70.0, 10, 0);
  ledger.record_grant(0, a);
  // Node 1 may get at most 100 - reserve(node 0) at every breakpoint
  // while its own grant lives; node 0's unacked 70 caps it at 30.
  const double room = ledger.max_grant(1, 10, 0);
  EXPECT_LE(room, 30.0 + 1e-9);
  EXPECT_GE(room, 20.0);  // at least its own fallback is always safe
  // Once node 0 acks DOWN to a modest cap, room opens.
  const CapGrant a2 = grant(ledger.next_seq(0), 30.0, 10, 1);
  ledger.record_grant(0, a2);
  EXPECT_TRUE(ledger.on_ack(0, a2.seq));
  EXPECT_GT(ledger.max_grant(1, 10, 1), 60.0);
}

TEST(LeaseLedger, ExpiredUnackedGrantKeepsFallbackScenarioAlive) {
  LeaseLedger ledger({20.0, 20.0}, 100.0);
  const CapGrant a = grant(ledger.next_seq(0), 70.0, 4, 0);
  ledger.record_grant(0, a);
  ledger.prune(4);  // expiry passed, never acked
  // The node may have adopted it and lapsed into autonomy, or never
  // seen it -- either way its worst case is the fallback now.
  EXPECT_DOUBLE_EQ(ledger.reserve(0, 4), 20.0);
  // The lost grant's ack may still arrive late; progress is recorded
  // but the candidate is long gone.
  EXPECT_TRUE(ledger.on_ack(0, a.seq));
  EXPECT_DOUBLE_EQ(ledger.reserve(0, 5), 20.0);
}

// The coupled safety property, adversarially: drive a ledger and a set
// of clients through random grant/deliver/drop/ack churn and check that
// at every epoch (a) each client's true cap is bounded by the ledger's
// reserve for it, and (b) the sum of true caps stays within budget.
// This is the unit-level version of the chaos STURGEON_CHECK.
TEST(LeaseLedger, RandomChurnKeepsTrueCapsWithinBudget) {
  const int kNodes = 4;
  const double kBudget = 200.0;
  const std::vector<double> autonomous(kNodes, 30.0);
  LeaseLedger ledger(autonomous, kBudget);
  std::vector<LeaseClient> clients;
  for (int i = 0; i < kNodes; ++i) clients.emplace_back(autonomous[i]);

  Rng rng(77);
  struct InFlight {
    int node;
    CapGrant grant;
    int arrive;
  };
  std::vector<InFlight> down, up;  // grants down, acks up (as grants)

  for (int t = 0; t < 400; ++t) {
    ledger.prune(t);
    // Coordinator: try a random desired cap on a random node.
    const int node = static_cast<int>(rng.next_double() * kNodes);
    const double desired = 20.0 + 150.0 * rng.next_double();
    const int expiry = t + 1 + static_cast<int>(rng.next_double() * 12);
    const double room = ledger.max_grant(node, expiry, t);
    const double cap = std::min(desired, room);
    if (cap >= autonomous[static_cast<std::size_t>(node)] - 1e-9) {
      const CapGrant g = grant(ledger.next_seq(node), cap, expiry, t);
      ledger.record_grant(node, g);
      const double u = rng.next_double();
      if (u < 0.6) {  // delivered, 0..3 epochs late; else lost
        down.push_back({node, g, t + static_cast<int>(u * 5.0)});
      }
    }
    // Deliver due grants (order scrambled by arrival epoch only).
    for (auto it = down.begin(); it != down.end();) {
      if (it->arrive <= t) {
        clients[static_cast<std::size_t>(it->node)].on_grant(it->grant);
        // The ack races back, also lossy and late.
        if (rng.next_double() < 0.7) {
          up.push_back({it->node, it->grant,
                        t + static_cast<int>(rng.next_double() * 4.0)});
        }
        it = down.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = up.begin(); it != up.end();) {
      if (it->arrive <= t) {
        ledger.on_ack(it->node, it->grant.seq);
        it = up.erase(it);
      } else {
        ++it;
      }
    }
    // The invariant: true caps within reserves, reserves within budget.
    double true_sum = 0.0, reserve_sum = 0.0;
    for (int i = 0; i < kNodes; ++i) {
      const double true_cap = clients[static_cast<std::size_t>(i)].cap(t);
      const double reserve = ledger.reserve(i, t);
      EXPECT_LE(true_cap, reserve + 1e-9) << "node " << i << " t " << t;
      true_sum += true_cap;
      reserve_sum += reserve;
    }
    EXPECT_LE(reserve_sum, kBudget + 1e-6) << "t " << t;
    EXPECT_LE(true_sum, kBudget + 1e-6) << "t " << t;
  }
}

}  // namespace
}  // namespace sturgeon::comms
