#include "fault/watchdog.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sturgeon::fault {
namespace {

TEST(NodeWatchdog, ValidatesConfiguration) {
  WatchdogConfig bad;
  bad.trip_after = 0;
  EXPECT_THROW(NodeWatchdog{bad}, std::invalid_argument);
  bad = {};
  bad.clear_after = 0;
  EXPECT_THROW(NodeWatchdog{bad}, std::invalid_argument);
}

WatchdogConfig config(int trip_after, int clear_after) {
  WatchdogConfig c;
  c.enabled = true;
  c.trip_after = trip_after;
  c.clear_after = clear_after;
  return c;
}

TEST(NodeWatchdog, StaysHealthyOnGoodEpochs) {
  NodeWatchdog w(config(3, 2));
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(w.observe(false, false));
  }
  EXPECT_EQ(w.trips(), 0);
  EXPECT_EQ(w.epochs_in_safe_mode(), 0);
}

TEST(NodeWatchdog, TripsAfterConsecutiveBadEpochs) {
  NodeWatchdog w(config(3, 2));
  EXPECT_FALSE(w.observe(true, false));
  EXPECT_FALSE(w.observe(true, false));
  EXPECT_TRUE(w.observe(true, false));  // third consecutive: trip now
  EXPECT_TRUE(w.in_safe_mode());
  EXPECT_EQ(w.trips(), 1);
}

TEST(NodeWatchdog, InterruptedBadStreakDoesNotTrip) {
  NodeWatchdog w(config(3, 2));
  EXPECT_FALSE(w.observe(true, false));
  EXPECT_FALSE(w.observe(true, false));
  EXPECT_FALSE(w.observe(false, false));  // streak broken
  EXPECT_FALSE(w.observe(true, false));
  EXPECT_FALSE(w.observe(true, false));
  EXPECT_EQ(w.trips(), 0);
}

TEST(NodeWatchdog, CapOvershootAloneCounts) {
  NodeWatchdog w(config(2, 2));
  EXPECT_FALSE(w.observe(false, true));
  EXPECT_TRUE(w.observe(false, true));
  EXPECT_TRUE(w.in_safe_mode());
}

TEST(NodeWatchdog, ClearsWithHysteresisAndRecordsEpisode) {
  NodeWatchdog w(config(2, 3));
  w.observe(true, false);
  EXPECT_TRUE(w.observe(true, false));   // trip (1st epoch in safe mode)
  EXPECT_TRUE(w.observe(false, false));  // good 1 (2nd)
  EXPECT_TRUE(w.observe(false, false));  // good 2 (3rd)
  // Third consecutive good epoch clears: the node runs its policy again
  // this epoch, so the episode spans trip + two good epochs.
  EXPECT_FALSE(w.observe(false, false));
  EXPECT_FALSE(w.in_safe_mode());
  ASSERT_EQ(w.completed_episodes().size(), 1u);
  EXPECT_EQ(w.completed_episodes()[0], 3);
  EXPECT_EQ(w.epochs_in_safe_mode(), 3);
}

TEST(NodeWatchdog, BadEpochInSafeModeRestartsClearStreak) {
  NodeWatchdog w(config(2, 2));
  w.observe(true, false);
  EXPECT_TRUE(w.observe(true, false));   // trip
  EXPECT_TRUE(w.observe(false, false));  // good 1
  EXPECT_TRUE(w.observe(true, false));   // bad: clear streak restarts
  EXPECT_TRUE(w.observe(false, false));  // good 1
  EXPECT_FALSE(w.observe(false, false));  // good 2: clears
  EXPECT_EQ(w.trips(), 1);
  ASSERT_EQ(w.completed_episodes().size(), 1u);
  EXPECT_EQ(w.completed_episodes()[0], 4);
}

TEST(NodeWatchdog, RepeatedEpisodesAllRecorded) {
  NodeWatchdog w(config(1, 1));
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(w.observe(true, false));    // trip immediately
    EXPECT_FALSE(w.observe(false, false));  // one good epoch clears
  }
  EXPECT_EQ(w.trips(), 3);
  EXPECT_EQ(w.completed_episodes().size(), 3u);
}

TEST(NodeWatchdog, DisabledNeverTrips) {
  NodeWatchdog w;  // default config: enabled = false
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(w.observe(true, true));
  }
  EXPECT_EQ(w.trips(), 0);
}

TEST(NodeWatchdog, ResetForgetsEverything) {
  NodeWatchdog w(config(1, 5));
  w.observe(true, false);
  EXPECT_TRUE(w.in_safe_mode());
  w.reset();
  EXPECT_FALSE(w.in_safe_mode());
  EXPECT_EQ(w.trips(), 0);
  EXPECT_EQ(w.epochs_in_safe_mode(), 0);
  EXPECT_TRUE(w.completed_episodes().empty());
}

}  // namespace
}  // namespace sturgeon::fault
