#include "fault/retry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "isolation/sim_backend.h"
#include "workloads/app_profile.h"

namespace sturgeon::fault {
namespace {

using isolation::ActuatorError;
using isolation::AppId;

/// Deterministic flake: throws ActuatorError on the first `fail_first`
/// writes, then forwards forever (fail_first < 0 = fail every write).
class FlakyCpuset final : public isolation::CpusetController {
 public:
  FlakyCpuset(isolation::CpusetController& inner, int fail_first)
      : inner_(inner), remaining_(fail_first) {}

  void set_cpuset(AppId app, const std::vector<int>& cores) override {
    const bool fail = remaining_ != 0;
    if (remaining_ > 0) --remaining_;
    if (fail) throw ActuatorError("cpuset write");
    inner_.set_cpuset(app, cores);
  }
  std::vector<int> cpuset(AppId app) const override {
    return inner_.cpuset(app);
  }

 private:
  isolation::CpusetController& inner_;
  int remaining_;
};

struct Rig {
  sim::SimulatedServer server;
  isolation::SimBackend backend;

  Rig()
      : server(find_ls("memcached"), find_be("rt"), 1,
               [] {
                 sim::ServerConfig cfg;
                 cfg.interference.enabled = false;
                 return cfg;
               }()),
        backend(server) {}

  Partition target() const {
    Partition p;
    p.ls = {6, 4, 8};
    p.be = {14, 9, 12};
    return p;
  }
};

TEST(RetryingEnforcer, ValidatesConfiguration) {
  Rig rig;
  isolation::ResourceEnforcer enforcer(rig.server.machine(),
                                       rig.backend.cpuset(), rig.backend.cat(),
                                       rig.backend.freq());
  RetryConfig bad;
  bad.max_attempts = 0;
  EXPECT_THROW(RetryingEnforcer(enforcer, bad), std::invalid_argument);
  bad = {};
  bad.max_backoff_us = 10;
  bad.base_backoff_us = 100;
  EXPECT_THROW(RetryingEnforcer(enforcer, bad), std::invalid_argument);
}

TEST(RetryingEnforcer, CleanPathAppliesAndVerifies) {
  Rig rig;
  isolation::ResourceEnforcer enforcer(rig.server.machine(),
                                       rig.backend.cpuset(), rig.backend.cat(),
                                       rig.backend.freq());
  RetryingEnforcer retry(enforcer);
  EXPECT_TRUE(retry.apply(rig.target()));
  EXPECT_EQ(rig.server.partition(), rig.target());
  EXPECT_EQ(retry.stats().applies, 1u);
  EXPECT_EQ(retry.stats().retries, 0u);
  EXPECT_EQ(retry.stats().backoff_us, 0u);
}

TEST(RetryingEnforcer, RetriesTransientFailuresUntilApplied) {
  Rig rig;
  FlakyCpuset flaky(rig.backend.cpuset(), 2);  // first two writes bounce
  isolation::ResourceEnforcer enforcer(rig.server.machine(), flaky,
                                       rig.backend.cat(), rig.backend.freq());
  RetryingEnforcer retry(enforcer);
  EXPECT_TRUE(retry.apply(rig.target()));
  EXPECT_EQ(rig.server.partition(), rig.target());
  EXPECT_EQ(retry.current(), rig.target());
  EXPECT_GE(retry.stats().retries, 1u);
  EXPECT_EQ(retry.stats().actuator_errors, 2u);
  EXPECT_EQ(retry.stats().gave_up, 0u);
  EXPECT_GT(retry.stats().backoff_us, 0u);
}

TEST(RetryingEnforcer, GivesUpConsistentlyAfterMaxAttempts) {
  Rig rig;
  FlakyCpuset flaky(rig.backend.cpuset(), -1);  // every write bounces
  isolation::ResourceEnforcer enforcer(rig.server.machine(), flaky,
                                       rig.backend.cat(), rig.backend.freq());
  RetryConfig config;
  config.max_attempts = 3;
  RetryingEnforcer retry(enforcer, config);
  EXPECT_FALSE(retry.apply(rig.target()));
  EXPECT_EQ(retry.stats().gave_up, 1u);
  EXPECT_EQ(retry.stats().actuator_errors, 3u);
  EXPECT_EQ(retry.stats().retries, 2u);
  // After the final resync, current() reflects the hardware's actual
  // state, so the next apply sequences against reality.
  EXPECT_EQ(retry.current(), rig.backend.derived_partition());
}

TEST(RetryingEnforcer, BackoffIsBoundedExponential) {
  Rig rig;
  FlakyCpuset flaky(rig.backend.cpuset(), -1);
  isolation::ResourceEnforcer enforcer(rig.server.machine(), flaky,
                                       rig.backend.cat(), rig.backend.freq());
  RetryConfig config;
  config.max_attempts = 4;
  config.base_backoff_us = 100;
  config.max_backoff_us = 300;
  RetryingEnforcer retry(enforcer, config);
  EXPECT_FALSE(retry.apply(rig.target()));
  // Attempt 2: 100 us, attempt 3: 200 us, attempt 4: 400 -> capped 300.
  EXPECT_EQ(retry.stats().backoff_us, 100u + 200u + 300u);
}

TEST(RetryingEnforcer, JitterMustBeAFraction) {
  Rig rig;
  isolation::ResourceEnforcer enforcer(rig.server.machine(),
                                       rig.backend.cpuset(), rig.backend.cat(),
                                       rig.backend.freq());
  RetryConfig bad;
  bad.jitter = 1.5;
  EXPECT_THROW(RetryingEnforcer(enforcer, bad), std::invalid_argument);
  bad.jitter = -0.1;
  EXPECT_THROW(RetryingEnforcer(enforcer, bad), std::invalid_argument);
}

TEST(RetryingEnforcer, JitterIsBoundedAndSeedDeterministic) {
  const auto total_backoff = [](double jitter, std::uint64_t seed) {
    Rig rig;
    FlakyCpuset flaky(rig.backend.cpuset(), -1);
    isolation::ResourceEnforcer enforcer(rig.server.machine(), flaky,
                                         rig.backend.cat(),
                                         rig.backend.freq());
    RetryConfig config;
    config.max_attempts = 4;
    config.base_backoff_us = 100;
    config.max_backoff_us = 300;
    config.jitter = jitter;
    RetryingEnforcer retry(enforcer, config, seed);
    EXPECT_FALSE(retry.apply(rig.target()));
    return retry.stats().backoff_us;
  };
  // jitter == 0 (the default) draws nothing: bit-exact with the
  // pre-jitter schedule regardless of seed.
  EXPECT_EQ(total_backoff(0.0, 1), 100u + 200u + 300u);
  EXPECT_EQ(total_backoff(0.0, 2), 100u + 200u + 300u);
  // Full jitter scales each delay into [0.5x, 1.5x), deterministically
  // per seed -- same seed, same schedule; fleet seeds diverge.
  const std::uint64_t a = total_backoff(1.0, 7);
  EXPECT_EQ(a, total_backoff(1.0, 7));
  EXPECT_GE(a, (100u + 200u + 300u) / 2);
  EXPECT_LT(a, (100u + 200u + 300u) * 3 / 2);
  EXPECT_NE(a, total_backoff(1.0, 8));
}

TEST(RetryingEnforcer, PermanentErrorsPropagate) {
  Rig rig;
  isolation::ResourceEnforcer enforcer(rig.server.machine(),
                                       rig.backend.cpuset(), rig.backend.cat(),
                                       rig.backend.freq());
  RetryingEnforcer retry(enforcer);
  Partition impossible;
  impossible.ls = {999, 0, 1};  // more cores than the machine has
  impossible.be = {1, 0, 1};
  EXPECT_THROW(retry.apply(impossible), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::fault
