#include "fault/sanitizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace sturgeon::fault {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

SanitizerConfig bounds(double lo, double hi) {
  SanitizerConfig c;
  c.lo = lo;
  c.hi = hi;
  return c;
}

TEST(SignalSanitizer, ValidatesConfiguration) {
  EXPECT_THROW(SignalSanitizer(bounds(10.0, 0.0)), std::invalid_argument);
  EXPECT_THROW(SignalSanitizer(bounds(kNaN, 1.0)), std::invalid_argument);
  SanitizerConfig c = bounds(0.0, 100.0);
  c.decay = 1.5;
  EXPECT_THROW(SignalSanitizer{c}, std::invalid_argument);
  c = bounds(0.0, 100.0);
  c.spike_rel_threshold = 0.0;
  EXPECT_THROW(SignalSanitizer{c}, std::invalid_argument);
}

TEST(SignalSanitizer, CleanStreamPassesThroughWithOneStepLag) {
  SignalSanitizer s(bounds(0.0, 200.0));
  // Before the window fills, readings pass through unchanged; from the
  // third reading on, the median-of-3 lags monotone input by one step.
  EXPECT_DOUBLE_EQ(s.sanitize(50.0), 50.0);
  EXPECT_DOUBLE_EQ(s.sanitize(51.0), 51.0);
  EXPECT_DOUBLE_EQ(s.sanitize(52.0), 51.0);  // median(50, 51, 52)
  EXPECT_DOUBLE_EQ(s.sanitize(53.0), 52.0);  // median(53, 51, 52)
  EXPECT_EQ(s.counters().rejected_nonfinite, 0u);
  EXPECT_EQ(s.counters().clamped, 0u);
  EXPECT_EQ(s.counters().spike_suppressed, 0u);
  EXPECT_EQ(s.counters().total_interventions(), 0u);
}

TEST(SignalSanitizer, AlwaysReturnsFiniteInBounds) {
  SignalSanitizer s(bounds(0.0, 100.0));
  const double probes[] = {kNaN, kInf, -kInf, -50.0, 1e9, 42.0, kNaN};
  for (const double p : probes) {
    const double v = s.sanitize(p);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(SignalSanitizer, NonFiniteHeldThenDecaysTowardMean) {
  SanitizerConfig c = bounds(0.0, 1000.0);
  c.decay = 0.5;
  SignalSanitizer s(c);
  s.sanitize(100.0);
  s.sanitize(100.0);
  s.sanitize(100.0);  // mean ~= 100, held = 100
  const double h1 = s.sanitize(kNaN);
  EXPECT_DOUBLE_EQ(h1, 100.0);  // mean == held: stays put
  EXPECT_EQ(s.counters().rejected_nonfinite, 1u);

  // Push the held value away from the mean, then drop out: each
  // substitution moves halfway back toward the mean of ACCEPTED
  // readings (rejected ones never update the mean).
  SignalSanitizer s2(c);
  s2.sanitize(100.0);  // accepted: mean 100, held 100
  const double d1 = s2.sanitize(kNaN);  // held stays 100
  EXPECT_DOUBLE_EQ(d1, 100.0);
  s2.sanitize(200.0);  // accepted: mean 150, held 200
  const double d2 = s2.sanitize(kNaN);
  EXPECT_DOUBLE_EQ(d2, 150.0 + 0.5 * (200.0 - 150.0));
}

TEST(SignalSanitizer, ClampsOutOfBoundsReadings) {
  SignalSanitizer s(bounds(10.0, 90.0));
  EXPECT_DOUBLE_EQ(s.sanitize(-5.0), 10.0);
  EXPECT_DOUBLE_EQ(s.sanitize(500.0), 90.0);
  EXPECT_EQ(s.counters().clamped, 2u);
}

TEST(SignalSanitizer, MedianOfThreeSuppressesSingleSpike) {
  SignalSanitizer s(bounds(0.0, 10000.0));
  s.sanitize(50.0);
  s.sanitize(51.0);
  // A 40x outlier: the median deletes it and the counter fires (the
  // deviation far exceeds the 50% relative threshold).
  const double v = s.sanitize(2000.0);
  EXPECT_LE(v, 51.0);
  EXPECT_EQ(s.counters().spike_suppressed, 1u);
  // The stream recovers on the next reading.
  const double w = s.sanitize(52.0);
  EXPECT_LE(w, 52.0 + 1e-9);
}

TEST(SignalSanitizer, OrdinaryNoiseDoesNotCountAsSpikes) {
  SignalSanitizer s(bounds(0.0, 1000.0));
  double x = 100.0;
  for (int i = 0; i < 100; ++i) {
    x += (i % 2 == 0) ? 3.0 : -2.0;  // +-3% jitter around 100
    s.sanitize(x);
  }
  EXPECT_EQ(s.counters().spike_suppressed, 0u);
}

TEST(SignalSanitizer, ResetForgetsHistory) {
  SignalSanitizer s(bounds(0.0, 100.0));
  s.sanitize(kNaN);
  s.sanitize(500.0);
  EXPECT_GT(s.counters().total_interventions(), 0u);
  s.reset();
  EXPECT_EQ(s.counters().total_interventions(), 0u);
  EXPECT_EQ(s.counters().accepted, 0u);
  // Post-reset, a dropout substitutes the lower bound again.
  EXPECT_DOUBLE_EQ(s.sanitize(kNaN), 0.0);
}

}  // namespace
}  // namespace sturgeon::fault
