#include "fault/injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace sturgeon::fault {
namespace {

TEST(FaultInjector, ValidatesConfiguration) {
  FaultConfig bad;
  bad.sensor.dropout_p = 1.5;
  EXPECT_THROW(FaultInjector(bad, 1), std::invalid_argument);
  bad = {};
  bad.sensor.stale_p = -0.1;
  EXPECT_THROW(FaultInjector(bad, 1), std::invalid_argument);
  bad = {};
  bad.actuator.fail_p = 2.0;
  EXPECT_THROW(FaultInjector(bad, 1), std::invalid_argument);
  bad = {};
  bad.sensor.spike_factor = 0.0;
  EXPECT_THROW(FaultInjector(bad, 1), std::invalid_argument);
  bad = {};
  bad.model.error_inflation = -1.0;
  EXPECT_THROW(FaultInjector(bad, 1), std::invalid_argument);
}

TEST(FaultInjector, ForNodeClearsOtherVictims) {
  FaultConfig config;
  config.enabled = true;
  config.sensor.dropout_p = 0.1;
  config.node.victim = 3;
  config.node.crash_epoch = 5;
  config.node.crash_epochs = 2;
  config.model.victim = 3;
  config.model.start_epoch = 1;
  config.model.epochs = 4;

  const FaultConfig victim = config.for_node(3);
  EXPECT_EQ(victim.node.crash_epoch, 5);
  EXPECT_EQ(victim.model.start_epoch, 1);

  const FaultConfig bystander = config.for_node(0);
  EXPECT_EQ(bystander.node.crash_epoch, -1);   // cleared
  EXPECT_EQ(bystander.model.start_epoch, -1);  // cleared
  EXPECT_DOUBLE_EQ(bystander.sensor.dropout_p, 0.1);  // untargeted: kept
}

TEST(FaultInjector, ForNodeModelWildcardHitsEveryNode) {
  FaultConfig config;
  config.model.victim = -1;
  config.model.start_epoch = 2;
  config.model.epochs = 3;
  EXPECT_EQ(config.for_node(0).model.start_epoch, 2);
  EXPECT_EQ(config.for_node(7).model.start_epoch, 2);
}

TEST(FaultInjector, CrashWindowAndRebootFlag) {
  FaultConfig config;
  config.enabled = true;
  config.node.victim = 0;
  config.node.crash_epoch = 3;
  config.node.crash_epochs = 2;
  FaultInjector inj(config.for_node(0), 42);

  std::vector<bool> down, rebooted;
  for (int t = 0; t < 8; ++t) {
    inj.begin_epoch(t);
    down.push_back(inj.node_down());
    rebooted.push_back(inj.rebooted_this_epoch());
  }
  const std::vector<bool> want_down = {false, false, false, true,
                                       true,  false, false, false};
  const std::vector<bool> want_reboot = {false, false, false, false,
                                         false, true,  false, false};
  EXPECT_EQ(down, want_down);
  EXPECT_EQ(rebooted, want_reboot);
  EXPECT_EQ(inj.counts().down_epochs, 2u);
}

TEST(FaultInjector, HangWindow) {
  FaultConfig config;
  config.enabled = true;
  config.node.victim = 0;
  config.node.hang_epoch = 2;
  config.node.hang_epochs = 3;
  FaultInjector inj(config.for_node(0), 42);
  for (int t = 0; t < 7; ++t) {
    inj.begin_epoch(t);
    EXPECT_EQ(inj.node_hung(), t >= 2 && t < 5) << "t=" << t;
  }
  EXPECT_EQ(inj.counts().hung_epochs, 3u);
}

TEST(FaultInjector, DropoutReturnsNaN) {
  FaultConfig config;
  config.enabled = true;
  config.sensor.dropout_p = 1.0;
  FaultInjector inj(config, 7);
  inj.begin_epoch(0);
  EXPECT_TRUE(std::isnan(inj.corrupt_power_w(55.0)));
  EXPECT_TRUE(std::isnan(inj.corrupt_latency_ms(3.0)));
  EXPECT_EQ(inj.counts().sensor_dropouts, 2u);
}

TEST(FaultInjector, StaleRepeatsPreviousReading) {
  FaultConfig config;
  config.enabled = true;
  config.sensor.stale_p = 1.0;
  FaultInjector inj(config, 7);
  inj.begin_epoch(0);
  // No previous measurement yet: behaves like a dropout.
  EXPECT_TRUE(std::isnan(inj.corrupt_power_w(50.0)));
  inj.begin_epoch(1);
  EXPECT_DOUBLE_EQ(inj.corrupt_power_w(60.0), 50.0);
  inj.begin_epoch(2);
  EXPECT_DOUBLE_EQ(inj.corrupt_power_w(70.0), 60.0);
}

TEST(FaultInjector, SpikeMultipliesForBurstLength) {
  FaultConfig config;
  config.enabled = true;
  config.sensor.spike_p = 1.0;
  config.sensor.spike_factor = 4.0;
  config.sensor.spike_burst_epochs = 3;
  FaultInjector inj(config, 7);
  for (int t = 0; t < 4; ++t) {
    inj.begin_epoch(t);
    EXPECT_DOUBLE_EQ(inj.corrupt_power_w(10.0), 40.0) << "t=" << t;
  }
  EXPECT_GE(inj.counts().sensor_spikes, 4u);
}

TEST(FaultInjector, CleanConfigIsTransparent) {
  FaultConfig config;
  config.enabled = true;  // enabled but all probabilities zero
  FaultInjector inj(config, 9);
  for (int t = 0; t < 50; ++t) {
    inj.begin_epoch(t);
    EXPECT_DOUBLE_EQ(inj.corrupt_power_w(42.0 + t), 42.0 + t);
    EXPECT_DOUBLE_EQ(inj.corrupt_latency_ms(1.0 + t), 1.0 + t);
    EXPECT_FALSE(inj.tool_call_fails());
    EXPECT_DOUBLE_EQ(inj.model_error_inflation(), 1.0);
  }
  EXPECT_EQ(inj.counts().sensor_dropouts, 0u);
  EXPECT_EQ(inj.counts().tool_call_failures, 0u);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultConfig config;
  config.enabled = true;
  config.sensor.dropout_p = 0.2;
  config.sensor.stale_p = 0.1;
  config.sensor.spike_p = 0.05;
  config.actuator.fail_p = 0.3;
  FaultInjector a(config, 1234), b(config, 1234);
  for (int t = 0; t < 200; ++t) {
    a.begin_epoch(t);
    b.begin_epoch(t);
    const double pa = a.corrupt_power_w(100.0);
    const double pb = b.corrupt_power_w(100.0);
    EXPECT_TRUE((std::isnan(pa) && std::isnan(pb)) || pa == pb) << "t=" << t;
    EXPECT_EQ(a.tool_call_fails(), b.tool_call_fails()) << "t=" << t;
  }
}

TEST(FaultInjector, ActuatorDrawsDoNotShiftSensorSchedule) {
  // Retries consume a variable number of actuator draws; the sensor
  // stream must be independent of how many.
  FaultConfig config;
  config.enabled = true;
  config.sensor.dropout_p = 0.3;
  config.actuator.fail_p = 0.5;
  FaultInjector a(config, 99), b(config, 99);
  for (int t = 0; t < 100; ++t) {
    a.begin_epoch(t);
    b.begin_epoch(t);
    a.tool_call_fails();  // one draw
    for (int k = 0; k < 7; ++k) b.tool_call_fails();  // many draws
    const double pa = a.corrupt_power_w(100.0);
    const double pb = b.corrupt_power_w(100.0);
    EXPECT_TRUE((std::isnan(pa) && std::isnan(pb)) || pa == pb) << "t=" << t;
  }
}

TEST(FaultInjector, ActuatorBurstWindowRaisesFailureRate) {
  FaultConfig config;
  config.enabled = true;
  config.actuator.fail_p = 0.0;
  config.actuator.burst_start_epoch = 10;
  config.actuator.burst_epochs = 5;
  config.actuator.burst_fail_p = 1.0;
  FaultInjector inj(config, 5);
  for (int t = 0; t < 20; ++t) {
    inj.begin_epoch(t);
    const bool in_burst = t >= 10 && t < 15;
    EXPECT_EQ(inj.tool_call_fails(), in_burst) << "t=" << t;
  }
  EXPECT_EQ(inj.counts().tool_call_failures, 5u);
}

TEST(FaultInjector, ModelInflationWindow) {
  FaultConfig config;
  config.enabled = true;
  config.model.victim = -1;
  config.model.start_epoch = 4;
  config.model.epochs = 2;
  config.model.error_inflation = 1.5;
  FaultInjector inj(config, 3);
  for (int t = 0; t < 8; ++t) {
    inj.begin_epoch(t);
    const double want = (t >= 4 && t < 6) ? 1.5 : 1.0;
    EXPECT_DOUBLE_EQ(inj.model_error_inflation(), want) << "t=" << t;
  }
  EXPECT_EQ(inj.counts().model_epochs, 2u);
}

}  // namespace
}  // namespace sturgeon::fault
