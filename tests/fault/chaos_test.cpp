// Chaos suite (ctest label: chaos): fleet-level fault injection against
// the full resilience stack. The standard schedule mirrors the
// acceptance experiment -- 5% sensor dropout fleet-wide, one actuator
// burst, one node crash/recover -- and the assertions are the paper-level
// guarantees: fleet QoS within a few points of the fault-free twin, the
// coordinator never oversubscribing the budget, and recovery time
// (MTTR) bounded.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "../core/fake_models.h"
#include "cluster/cluster.h"
#include "core/controller.h"
#include "fault/injector.h"
#include "workloads/app_profile.h"

namespace sturgeon::cluster {
namespace {

NodeSpec fake_spec(const LoadTrace& trace) {
  NodeSpec spec;
  spec.ls = find_ls("memcached");
  spec.be = be_catalog()[0];
  spec.trace = trace;
  const double qos_ms = spec.ls.qos_target_ms;
  spec.make_policy = [qos_ms](const sim::SimulatedServer& server) {
    return std::make_unique<core::SturgeonController>(
        core::testing::fake_predictor(server.machine()), qos_ms,
        server.power_budget_w());
  };
  return spec;
}

std::vector<NodeSpec> fake_fleet(int n, int duration_s) {
  std::vector<NodeSpec> specs;
  for (int i = 0; i < n; ++i) {
    const double load = 0.3 + 0.1 * (i % 5);
    specs.push_back(fake_spec(LoadTrace::constant(load, duration_s)));
  }
  return specs;
}

/// All defenses armed, as a chaos run would deploy them.
ResilienceConfig defenses() {
  ResilienceConfig r;
  r.sanitize_sensors = true;
  r.watchdog.enabled = true;
  r.retry.max_attempts = 4;
  r.heartbeat.dead_after_epochs = 3;
  return r;
}

/// The acceptance schedule: 5% sensor dropout everywhere, one actuator
/// burst, one node crash that recovers mid-run.
fault::FaultConfig standard_chaos() {
  fault::FaultConfig f;
  f.enabled = true;
  f.sensor.dropout_p = 0.05;
  f.actuator.burst_start_epoch = 10;
  f.actuator.burst_epochs = 3;
  f.actuator.burst_fail_p = 0.9;
  f.node.victim = 1;
  f.node.crash_epoch = 15;
  f.node.crash_epochs = 6;
  return f;
}

ClusterResult run_fleet(int nodes, int epochs, std::uint64_t seed,
                        std::size_t threads, bool faults) {
  ClusterConfig config;
  config.seed = seed;
  config.threads = threads;
  config.resilience = defenses();
  if (faults) config.faults = standard_chaos();
  ClusterSim sim(fake_fleet(nodes, epochs), config);
  return sim.run();
}

TEST(Chaos, StandardScheduleKeepsFleetGuarantees) {
  const int kNodes = 4, kEpochs = 40;
  const ClusterResult clean = run_fleet(kNodes, kEpochs, 11, 2, false);
  const ClusterResult chaos = run_fleet(kNodes, kEpochs, 11, 2, true);

  // The faults really fired.
  const NodeResult& victim = chaos.node_results[1];
  EXPECT_EQ(victim.epochs_down, 6);
  EXPECT_GT(chaos.dead_node_epochs, 0);
  std::uint64_t injected = 0, retries = 0;
  for (const auto& nr : chaos.node_results) {
    injected += nr.faults_injected;
    retries += nr.actuator_retries;
  }
  EXPECT_GT(injected, 0u);
  EXPECT_GT(retries, 0u);

  // ...and the defenses held: fleet QoS within 5 points of the
  // fault-free twin, budget never oversubscribed, recovery bounded.
  EXPECT_GE(chaos.fleet_qos_guarantee_rate,
            clean.fleet_qos_guarantee_rate - 0.05);
  EXPECT_LE(chaos.max_cap_sum_ratio, 1.0 + 1e-9);
  ASSERT_FALSE(chaos.recovery_mttr_epochs.empty());
  EXPECT_LE(chaos.mttr_p95_epochs, 10.0);
  // The victim's epochs still account for the full run (lockstep holds).
  EXPECT_EQ(victim.epochs, kEpochs);
}

TEST(Chaos, DeterministicAcrossThreadCounts) {
  const int kNodes = 4, kEpochs = 30;
  const ClusterResult a = run_fleet(kNodes, kEpochs, 23, 1, true);
  const ClusterResult b = run_fleet(kNodes, kEpochs, 23, 2, true);
  const ClusterResult c = run_fleet(kNodes, kEpochs, 23, 8, true);

  for (const ClusterResult* r : {&b, &c}) {
    EXPECT_EQ(a.fleet_qos_guarantee_rate, r->fleet_qos_guarantee_rate);
    EXPECT_EQ(a.aggregate_be_throughput, r->aggregate_be_throughput);
    EXPECT_EQ(a.mean_cluster_power_w, r->mean_cluster_power_w);
    EXPECT_EQ(a.max_cap_sum_ratio, r->max_cap_sum_ratio);
    EXPECT_EQ(a.dead_node_epochs, r->dead_node_epochs);
    EXPECT_EQ(a.recovery_mttr_epochs, r->recovery_mttr_epochs);
    ASSERT_EQ(a.node_results.size(), r->node_results.size());
    for (std::size_t i = 0; i < a.node_results.size(); ++i) {
      const NodeResult& x = a.node_results[i];
      const NodeResult& y = r->node_results[i];
      EXPECT_EQ(x.total_completed, y.total_completed) << "node " << i;
      EXPECT_EQ(x.total_violations, y.total_violations) << "node " << i;
      EXPECT_EQ(x.mean_cap_w, y.mean_cap_w) << "node " << i;
      EXPECT_EQ(x.epochs_down, y.epochs_down) << "node " << i;
      EXPECT_EQ(x.epochs_hung, y.epochs_hung) << "node " << i;
      EXPECT_EQ(x.safe_mode_epochs, y.safe_mode_epochs) << "node " << i;
      EXPECT_EQ(x.faults_injected, y.faults_injected) << "node " << i;
      EXPECT_EQ(x.sensor_rejected, y.sensor_rejected) << "node " << i;
      EXPECT_EQ(x.actuator_retries, y.actuator_retries) << "node " << i;
    }
  }
}

// Exercised under TSan in CI: a node crashing and rejoining while the
// rest of the fleet steps in parallel must not race (the dead node's
// step is a no-op on its own state only; liveness bookkeeping is
// sequential in the coordinator phase).
TEST(Chaos, CrashAndRecoverUnderParallelStepping) {
  ClusterConfig config;
  config.seed = 31;
  config.threads = 8;
  config.resilience = defenses();
  config.faults.enabled = true;
  config.faults.node.victim = 2;
  config.faults.node.crash_epoch = 5;
  config.faults.node.crash_epochs = 5;
  ClusterSim sim(fake_fleet(6, 25), config);
  const ClusterResult result = sim.run();

  EXPECT_EQ(result.node_results[2].epochs_down, 5);
  EXPECT_GT(result.dead_node_epochs, 0);
  ASSERT_FALSE(result.recovery_mttr_epochs.empty());
  // Rejoin happened: after the crash window the node reported again and
  // the tracker closed the outage.
  EXPECT_LE(result.recovery_mttr_epochs[0], 10);
}

TEST(Chaos, HungNodeIsDeclaredDeadAndRejoins) {
  ClusterConfig config;
  config.seed = 37;
  config.threads = 2;
  config.resilience = defenses();
  config.faults.enabled = true;
  config.faults.node.victim = 0;
  config.faults.node.hang_epoch = 8;
  config.faults.node.hang_epochs = 6;
  ClusterSim sim(fake_fleet(3, 30), config);
  const ClusterResult result = sim.run();

  const NodeResult& victim = result.node_results[0];
  EXPECT_EQ(victim.epochs_hung, 6);
  EXPECT_EQ(victim.epochs_down, 0);
  // A hung control loop stops heartbeating, so the tracker treats it
  // like a crash: watts reclaimed, outage recorded on rejoin.
  EXPECT_GT(result.dead_node_epochs, 0);
  ASSERT_FALSE(result.recovery_mttr_epochs.empty());
  // But the serving path stayed up: the node completed queries over the
  // whole run, not just the healthy epochs.
  EXPECT_GT(victim.total_completed, 0u);
}

TEST(Chaos, SensorChaosAloneStaysClose) {
  // Heavy sensor corruption, full defenses, no crash: the sanitizer
  // must keep the control loop sane enough that QoS holds.
  ClusterConfig config;
  config.seed = 41;
  config.threads = 2;
  config.resilience = defenses();
  config.faults.enabled = true;
  config.faults.sensor.dropout_p = 0.10;
  config.faults.sensor.spike_p = 0.05;
  config.faults.sensor.spike_factor = 8.0;
  ClusterSim noisy(fake_fleet(3, 40), config);
  const ClusterResult faulted = noisy.run();

  ClusterConfig clean_config = config;
  clean_config.faults = {};
  ClusterSim clean(fake_fleet(3, 40), clean_config);
  const ClusterResult baseline = clean.run();

  std::uint64_t rejected = 0;
  for (const auto& nr : faulted.node_results) rejected += nr.sensor_rejected;
  EXPECT_GT(rejected, 0u);
  EXPECT_GE(faulted.fleet_qos_guarantee_rate,
            baseline.fleet_qos_guarantee_rate - 0.05);
  EXPECT_LE(faulted.max_cap_sum_ratio, 1.0 + 1e-9);
}

}  // namespace
}  // namespace sturgeon::cluster
